//! The sharded testbed core: one coupled topology across N schedulers.
//!
//! [`ShardedTestbed`] partitions the nodes of one topology across N
//! [`Shard`]s. Each shard owns an independent [`Scheduler`] plus the full
//! state of its nodes (access links, traffic agents, payload pool);
//! packets that cross the internet core between two nodes — even two
//! nodes of the *same* shard — travel as [`Handoff`]s through per-shard
//! mailboxes, exchanged at conservative window boundaries
//! ([`umtslab_sim::shard::drive`]).
//!
//! ## Shard-count invariance
//!
//! Results are byte-identical for any shard count because nothing a shard
//! computes depends on what the partition looks like:
//!
//! * **randomness** is per entity, never per shard: each node's link
//!   jitter/fault draws come from a private stream seeded by the node's
//!   *global* index, and each UMTS attachment and traffic sender is
//!   seeded the same way ([`umtslab_sim::rng::job_seed`]);
//! * **packet ids** are allocated per node, so an echo reply's id is a
//!   function of the allocating node's history, not of shard layout;
//! * **cross-node traffic** always goes through the mailbox with the
//!   canonical `(at, origin, seq)` merge order — the origin *node* is the
//!   tie-break lane precisely because a node's shard assignment is not
//!   layout-invariant but its global index is;
//! * **window boundaries** sit on fixed multiples of the lookahead
//!   ([`umtslab_sim::shard::window_ends`]), so injection instants do not
//!   move when the shard count or run phasing changes.
//!
//! The conservative lookahead is `min(access link delay, core hop)`: every
//! cross-node path takes at least one access-link traversal (or the
//! operator-edge→core hop for UMTS uplinks), so a handoff produced in
//! window `k` is never due before window `k+1`.
//!
//! Relative to [`crate::testbed::Testbed`], the sharded core models one
//! extra explicit latency: the operator-edge→core hop
//! ([`ShardedTestbed::CORE_HOP`]). The single-testbed path schedules UMTS
//! uplink packets at the core with zero delay, which would make the safe
//! lookahead zero; a real GGSN's internet edge is not co-located with the
//! research backbone either.

use std::collections::BTreeMap;
use std::sync::Arc;

use umtslab_ditg::{FlowSpec, TrafficReceiver, TrafficSender};
use umtslab_net::bytes::BufferPool;
use umtslab_net::label::Label;
use umtslab_net::link::{DuplexLink, LinkConfig, PushOutcome};
use umtslab_net::mailbox::{Handoff, HandoffKind, Inbox, Outbox};
use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::{EgressAction, Node, ETH0};
use umtslab_planetlab::slice::SliceId;
use umtslab_sim::event::EventHandle;
use umtslab_sim::rng::{job_seed, SimRng};
use umtslab_sim::sched::Scheduler;
use umtslab_sim::shard::{drive, ShardScheduler};
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::attachment::{DownlinkOutcome, UmtsAttachment};
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::testbed::{TestbedDrops, TestbedMetrics};

/// Handle to a node of a [`ShardedTestbed`] (its global index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalNodeId(pub usize);

/// Handle to a traffic agent of a [`ShardedTestbed`] (its global index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalAgentId(pub usize);

/// Seed-domain tags separating the per-entity randomness streams. Mixed
/// into the master seed before [`job_seed`] folds in the entity index.
const DOMAIN_NODE: u64 = 0x6e6f_6465; // "node"
const DOMAIN_ATTACH: u64 = 0x6174_7463; // "attc"
const DOMAIN_FLOW: u64 = 0x666c_6f77; // "flow"

/// Static routing state shared (read-only) by every shard: which global
/// node owns an address.
#[derive(Debug, Default, Clone)]
struct RouteTables {
    /// Exact `eth0` address → global node.
    eth: BTreeMap<u32, u32>,
    /// Carved per-subscriber `/24` (address bits `>> 8`) → global node.
    umts24: BTreeMap<u32, u32>,
}

impl RouteTables {
    fn lookup(&self, dst: Ipv4Address) -> Option<(u32, HandoffKind)> {
        let raw = u32::from_be_bytes(dst.0);
        if let Some(&g) = self.eth.get(&raw) {
            return Some((g, HandoffKind::Wire));
        }
        if let Some(&g) = self.umts24.get(&(raw >> 8)) {
            return Some((g, HandoffKind::Umts));
        }
        None
    }
}

enum Ev {
    /// Re-poll a node's internal machinery.
    NodeWake(usize),
    /// A packet reached a node's `eth0` over its access link.
    NodeArrive { node: usize, packet: Packet },
    /// A handed-off packet is at the core, taking its destination leg.
    CoreDeliver { node: usize, kind: HandoffKind, packet: Packet },
    /// A traffic sender's next departure.
    AgentSend(usize),
}

enum AgentSlot {
    Sender { node: usize, slice: SliceId, agent: TrafficSender },
    Receiver { agent: TrafficReceiver },
}

/// One partition of a [`ShardedTestbed`]: a scheduler plus the complete
/// state of the nodes it owns.
pub struct Shard {
    /// This shard's index and the total shard count (the partition is
    /// `global % nshards == shard`, so `local = global / nshards`).
    shard: usize,
    nshards: usize,
    core_hop: Duration,
    sched: Scheduler<Ev>,
    nodes: Vec<Node>,
    access: Vec<DuplexLink>,
    /// Per-node RNG driving that node's access-link jitter/fault draws.
    /// Seeded from the node's global index: shard-layout invariant.
    link_rng: Vec<SimRng>,
    /// Per-node packet-id allocator (ids appear in traces; a shared
    /// allocator would leak shard layout into them).
    ids: Vec<PacketIdAllocator>,
    wake_armed: Vec<Option<(Instant, EventHandle)>>,
    agents: Vec<AgentSlot>,
    /// Receiver lookup: (local node, port) → local agent index.
    rx_ports: BTreeMap<(usize, u16), usize>,
    /// Sender lookup for echo replies: (local node, port) → local agent.
    tx_ports: BTreeMap<(usize, u16), usize>,
    routes: Arc<RouteTables>,
    outbox: Outbox,
    inbox: Inbox,
    drops: TestbedDrops,
    pool: BufferPool,
    started: bool,
}

impl Shard {
    fn new(shard: usize, nshards: usize, core_hop: Duration) -> Shard {
        Shard {
            shard,
            nshards,
            core_hop,
            sched: Scheduler::new(),
            nodes: Vec::new(),
            access: Vec::new(),
            link_rng: Vec::new(),
            ids: Vec::new(),
            wake_armed: Vec::new(),
            agents: Vec::new(),
            rx_ports: BTreeMap::new(),
            tx_ports: BTreeMap::new(),
            routes: Arc::new(RouteTables::default()),
            outbox: Outbox::new(),
            inbox: Inbox::new(),
            drops: TestbedDrops::default(),
            pool: BufferPool::new(),
            started: false,
        }
    }

    /// The global index of local node `local`.
    fn global_of(&self, local: usize) -> u32 {
        (local * self.nshards + self.shard) as u32
    }

    fn add_node(&mut self, node: Node, access: LinkConfig, seed: u64) {
        self.nodes.push(node);
        self.access.push(DuplexLink::symmetric(access));
        self.link_rng.push(SimRng::seed_from_u64(seed));
        self.ids.push(PacketIdAllocator::new());
        self.wake_armed.push(None);
    }

    fn add_sender(
        &mut self,
        local: usize,
        slice: SliceId,
        spec: FlowSpec,
        dst_addr: Ipv4Address,
        start: Instant,
        flow_id: u32,
        seed: u64,
    ) {
        let sport = spec.sport;
        let agent =
            TrafficSender::new(spec, flow_id, Ipv4Address::UNSPECIFIED, dst_addr, start, seed);
        let _ = self.nodes[local].bind(slice, sport);
        let idx = self.agents.len();
        self.agents.push(AgentSlot::Sender { node: local, slice, agent });
        self.tx_ports.insert((local, sport), idx);
        self.sched.at(start.max(self.sched.now()), Ev::AgentSend(idx));
    }

    fn add_receiver(&mut self, local: usize, slice: SliceId, port: u16, flow_id: u32, echo: bool) {
        let agent = TrafficReceiver::new(flow_id, echo);
        let _ = self.nodes[local].bind(slice, port);
        let idx = self.agents.len();
        self.agents.push(AgentSlot::Receiver { agent });
        self.rx_ports.insert((local, port), idx);
    }

    // --- event loop -----------------------------------------------------

    /// Schedules every staged handoff due before `horizon`, in canonical
    /// merge order (the scheduler's FIFO tie-break preserves it).
    fn inject_due(&mut self, horizon: Instant) {
        for h in self.inbox.due_before(horizon) {
            debug_assert_eq!(h.dst as usize % self.nshards, self.shard, "misrouted handoff");
            debug_assert!(h.at >= self.sched.now(), "handoff due before the window it reached");
            let local = h.dst as usize / self.nshards;
            self.sched.at(
                h.at.max(self.sched.now()),
                Ev::CoreDeliver { node: local, kind: h.kind, packet: h.packet },
            );
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        let now = self.sched.now();
        match ev {
            Ev::NodeWake(i) => {
                self.wake_armed[i] = None;
                self.poll_node(now, i);
            }
            Ev::NodeArrive { node, packet } => {
                let delivery = self.nodes[node].ingress(now, ETH0, packet);
                if delivery.is_some() {
                    self.flush_deliveries(now, node);
                }
                self.arm_node(node);
            }
            Ev::CoreDeliver { node, kind, packet } => self.core_deliver(now, node, kind, packet),
            Ev::AgentSend(idx) => self.agent_send(now, idx),
        }
    }

    fn agent_send(&mut self, now: Instant, idx: usize) {
        let AgentSlot::Sender { node, slice, agent } = &mut self.agents[idx] else {
            return;
        };
        let node_idx = *node;
        let slice = *slice;
        let Some(packet) = agent.emit(now, &mut self.ids[node_idx], &mut self.pool) else {
            if let Some(next) = agent.next_departure() {
                self.sched.at(next, Ev::AgentSend(idx));
            }
            return;
        };
        if let Some(next) = agent.next_departure() {
            self.sched.at(next, Ev::AgentSend(idx));
        }
        self.egress(now, node_idx, slice, packet);
    }

    fn egress(&mut self, now: Instant, node_idx: usize, slice: SliceId, packet: Packet) {
        match self.nodes[node_idx].send_from_slice(now, slice, packet) {
            EgressAction::Wire { iface: _, packet } => self.push_forward(now, node_idx, packet),
            EgressAction::Umts => self.arm_node(node_idx),
            EgressAction::Local => self.flush_deliveries(now, node_idx),
            EgressAction::Dropped(_) => self.drops.node_egress += 1,
        }
    }

    /// Sends `packet` up `node_idx`'s access link toward the core; each
    /// delivery becomes a handoff routed at the core's side of the link.
    fn push_forward(&mut self, now: Instant, node_idx: usize, packet: Packet) {
        let pipe = &mut self.access[node_idx].forward;
        match pipe.push(now, packet, &mut self.link_rng[node_idx]) {
            PushOutcome::Scheduled(deliveries) => {
                for (at, p) in deliveries {
                    self.stage_at_core(at, node_idx, p);
                }
            }
            PushOutcome::Dropped { .. } => self.drops.node_egress += 1,
        }
    }

    /// Routes a packet that reaches the core at `at` (originated by local
    /// node `origin`) and stages the handoff toward its destination.
    fn stage_at_core(&mut self, at: Instant, origin: usize, packet: Packet) {
        let Some((dst, kind)) = self.routes.lookup(packet.dst.addr) else {
            self.drops.core_unroutable += 1;
            return;
        };
        let origin = self.global_of(origin);
        self.outbox.push(at, origin, dst, kind, packet);
    }

    /// Delivers a handed-off packet arriving at the core into its
    /// destination node (which lives on this shard).
    fn core_deliver(&mut self, now: Instant, node: usize, kind: HandoffKind, packet: Packet) {
        match kind {
            HandoffKind::Wire => {
                let pipe = &mut self.access[node].reverse;
                match pipe.push(now, packet, &mut self.link_rng[node]) {
                    PushOutcome::Scheduled(deliveries) => {
                        for (at, p) in deliveries {
                            self.sched.at(at, Ev::NodeArrive { node, packet: p });
                        }
                    }
                    PushOutcome::Dropped { .. } => self.drops.core_unroutable += 1,
                }
            }
            HandoffKind::Umts => match self.nodes[node].deliver_umts_downlink(now, packet) {
                DownlinkOutcome::Queued => self.arm_node(node),
                DownlinkOutcome::BlockedByFirewall => self.drops.operator_firewall += 1,
                DownlinkOutcome::DroppedOverflow | DownlinkOutcome::NotConnected => {
                    self.drops.umts_downlink += 1;
                }
            },
        }
    }

    fn poll_node(&mut self, now: Instant, i: usize) {
        let out = self.nodes[i].poll(now);
        for p in out.to_internet {
            // Operator edge → core: the explicit hop whose latency is
            // part of the conservative lookahead.
            self.stage_at_core(now + self.core_hop, i, p);
        }
        for p in out.wire_tx {
            self.push_forward(now, i, p);
        }
        self.flush_deliveries(now, i);
        self.arm_node(i);
    }

    fn flush_deliveries(&mut self, now: Instant, node_idx: usize) {
        let deliveries = self.nodes[node_idx].take_delivered();
        for d in deliveries {
            let port = d.packet.dst.port;
            if let Some(&aidx) = self.rx_ports.get(&(node_idx, port)) {
                if let AgentSlot::Receiver { agent, .. } = &mut self.agents[aidx] {
                    let echo =
                        agent.on_receive(d.at, &d.packet, &mut self.ids[node_idx], &mut self.pool);
                    self.pool.reclaim(d.packet.payload);
                    if let Some(echo) = echo {
                        let slice = d.slice;
                        self.egress(now, node_idx, slice, echo);
                    }
                    continue;
                }
            }
            if let Some(&aidx) = self.tx_ports.get(&(node_idx, port)) {
                if let AgentSlot::Sender { agent, .. } = &mut self.agents[aidx] {
                    agent.on_receive(d.at, &d.packet);
                }
            }
            self.pool.reclaim(d.packet.payload);
        }
    }

    fn arm_node(&mut self, i: usize) {
        let Some(wake) = self.nodes[i].next_wakeup() else {
            return;
        };
        let wake = wake.max(self.sched.now());
        if let Some((armed, handle)) = self.wake_armed[i] {
            if armed <= wake {
                return;
            }
            self.sched.cancel(handle);
        }
        let handle = self.sched.at(wake, Ev::NodeWake(i));
        self.wake_armed[i] = Some((wake, handle));
    }
}

impl ShardScheduler for Shard {
    fn now(&self) -> Instant {
        self.sched.now()
    }

    fn run_window(&mut self, horizon: Instant) {
        if !self.started {
            self.started = true;
            #[cfg(debug_assertions)]
            {
                let findings: Vec<String> =
                    self.nodes.iter().flat_map(umtslab_planetlab::Node::audit).collect();
                debug_assert!(findings.is_empty(), "shard audit failed: {findings:?}");
            }
            for i in 0..self.nodes.len() {
                self.arm_node(i);
            }
        }
        self.inject_due(horizon);
        while let Some(ev) = self.sched.next_before(horizon) {
            self.dispatch(ev);
        }
    }
}

/// One coupled topology partitioned across N deterministic schedulers.
///
/// The public surface mirrors [`crate::testbed::Testbed`] with global
/// node/agent handles; [`ShardedTestbed::run_until`] drives the shards
/// serially, [`ShardedTestbed::run_until_with`] hands the per-window
/// fan-out to the caller (e.g. a worker pool) — both produce identical
/// bytes for any shard count.
pub struct ShardedTestbed {
    seed: u64,
    shards: Vec<Shard>,
    /// (shard, local index) of every global agent, in creation order.
    agent_dir: Vec<(usize, usize)>,
    nodes_total: usize,
    routes: RouteTables,
    routes_dirty: bool,
    /// Subscribers attached per operator name (global carve order).
    operator_subscribers: BTreeMap<Label, u32>,
    /// Minimum access-link delay seen so far; part of the lookahead.
    min_access_delay: Option<Duration>,
    clock: Instant,
}

impl ShardedTestbed {
    /// One-way latency of the operator-edge→core hop taken by UMTS uplink
    /// traffic. Explicit (unlike the single-testbed core, which uses
    /// zero) so the conservative lookahead stays positive.
    pub const CORE_HOP: Duration = Duration::from_millis(6);

    /// Creates an empty sharded testbed with `nshards` partitions.
    pub fn new(nshards: usize, seed: u64) -> ShardedTestbed {
        assert!(nshards >= 1, "at least one shard");
        ShardedTestbed {
            seed,
            shards: (0..nshards).map(|s| Shard::new(s, nshards, Self::CORE_HOP)).collect(),
            agent_dir: Vec::new(),
            nodes_total: 0,
            routes: RouteTables::default(),
            routes_dirty: true,
            operator_subscribers: BTreeMap::new(),
            min_access_delay: None,
            clock: Instant::ZERO,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.nodes_total
    }

    /// Current simulated time (all shards agree at window boundaries).
    pub fn now(&self) -> Instant {
        self.clock
    }

    /// The conservative lookahead: `min(access delay, core hop)`. Every
    /// cross-node path crosses at least one of the two.
    pub fn lookahead(&self) -> Duration {
        let la = self.min_access_delay.map_or(Self::CORE_HOP, |d| d.min(Self::CORE_HOP));
        assert!(la > Duration::ZERO, "zero-latency access link breaks the lookahead");
        la
    }

    fn shard_of(&self, global: usize) -> (usize, usize) {
        (global % self.shards.len(), global / self.shards.len())
    }

    /// Adds a node (global round-robin assignment to shards). Mirrors
    /// [`crate::testbed::Testbed::add_node`].
    pub fn add_node(
        &mut self,
        name: impl Into<Label>,
        eth_addr: Ipv4Address,
        subnet: Ipv4Cidr,
        gateway: Ipv4Address,
        access: LinkConfig,
    ) -> GlobalNodeId {
        assert!(access.delay > Duration::ZERO, "sharded access links need positive delay");
        let global = self.nodes_total;
        self.nodes_total += 1;
        let (shard, _) = self.shard_of(global);
        let mut node = Node::new(name);
        node.configure_eth(eth_addr, subnet, gateway);
        self.min_access_delay =
            Some(self.min_access_delay.map_or(access.delay, |d| d.min(access.delay)));
        let seed = job_seed(self.seed ^ DOMAIN_NODE, global as u64);
        self.shards[shard].add_node(node, access, seed);
        self.routes.eth.insert(u32::from_be_bytes(eth_addr.0), global as u32);
        self.routes_dirty = true;
        GlobalNodeId(global)
    }

    /// Installs a 3G card + operator attachment on a node, carving the
    /// subscriber's `/24` by global attach order (layout-invariant) and
    /// routing it to the node.
    pub fn attach_umts(
        &mut self,
        node: GlobalNodeId,
        mut operator: OperatorProfile,
        device: DeviceProfile,
        credentials: Option<Credentials>,
    ) {
        let index = self.operator_subscribers.entry(Label::intern(&operator.name)).or_insert(0);
        if let Some(slice) = operator.pool.subnet(24, *index) {
            operator.pool = slice;
        }
        *index += 1;
        let raw24 = u32::from_be_bytes(operator.pool.address().0) >> 8;
        self.routes.umts24.insert(raw24, node.0 as u32);
        self.routes_dirty = true;
        let seed = job_seed(self.seed ^ DOMAIN_ATTACH, node.0 as u64);
        let (shard, local) = self.shard_of(node.0);
        let now = self.clock;
        let att = UmtsAttachment::new(operator, device, credentials, seed, now);
        self.shards[shard].nodes[local].attach_umts(att);
    }

    /// Shared access to a node.
    pub fn node(&self, id: GlobalNodeId) -> &Node {
        let (shard, local) = self.shard_of(id.0);
        &self.shards[shard].nodes[local]
    }

    /// Mutable access to a node (for slices, vsys, bindings).
    pub fn node_mut(&mut self, id: GlobalNodeId) -> &mut Node {
        let (shard, local) = self.shard_of(id.0);
        &mut self.shards[shard].nodes[local]
    }

    /// Adds a traffic sender on `node`/`slice` toward `dst_addr`; the
    /// flow's RNG is seeded by its global agent index.
    pub fn add_sender(
        &mut self,
        node: GlobalNodeId,
        slice: SliceId,
        spec: FlowSpec,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> GlobalAgentId {
        let global_agent = self.agent_dir.len();
        let flow_id = global_agent as u32 + 1;
        let seed = job_seed(self.seed ^ DOMAIN_FLOW, global_agent as u64);
        let (shard, local) = self.shard_of(node.0);
        self.agent_dir.push((shard, self.shards[shard].agents.len()));
        self.shards[shard].add_sender(local, slice, spec, dst_addr, start, flow_id, seed);
        GlobalAgentId(global_agent)
    }

    /// Adds a traffic receiver on `node`/`slice` listening on `port` for
    /// flow `of_sender`.
    pub fn add_receiver(
        &mut self,
        node: GlobalNodeId,
        slice: SliceId,
        port: u16,
        of_sender: GlobalAgentId,
        echo: bool,
    ) -> GlobalAgentId {
        let flow_id = of_sender.0 as u32 + 1;
        let (shard, local) = self.shard_of(node.0);
        let global_agent = self.agent_dir.len();
        self.agent_dir.push((shard, self.shards[shard].agents.len()));
        self.shards[shard].add_receiver(local, slice, port, flow_id, echo);
        GlobalAgentId(global_agent)
    }

    /// The sender-side logs of an agent.
    pub fn sender_logs(
        &self,
        id: GlobalAgentId,
    ) -> (&[umtslab_ditg::SentRecord], &[umtslab_ditg::RttRecord]) {
        let (shard, local) = self.agent_dir[id.0];
        match &self.shards[shard].agents[local] {
            AgentSlot::Sender { agent, .. } => (agent.sent(), agent.rtts()),
            AgentSlot::Receiver { .. } => (&[], &[]),
        }
    }

    /// The receive log of an agent.
    pub fn receiver_records(&self, id: GlobalAgentId) -> &[umtslab_ditg::RecvRecord] {
        let (shard, local) = self.agent_dir[id.0];
        match &self.shards[shard].agents[local] {
            AgentSlot::Receiver { agent } => agent.records(),
            AgentSlot::Sender { .. } => &[],
        }
    }

    /// Drop counters summed across shards (order-independent).
    pub fn drops(&self) -> TestbedDrops {
        let mut d = TestbedDrops::default();
        for s in &self.shards {
            d.core_unroutable += s.drops.core_unroutable;
            d.operator_firewall += s.drops.operator_firewall;
            d.node_egress += s.drops.node_egress;
            d.umts_downlink += s.drops.umts_downlink;
        }
        d
    }

    /// Total events processed across all shards' schedulers.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.sched.events_processed()).sum()
    }

    /// Snapshots every layer's counters, summed across shards.
    pub fn metrics(&self) -> TestbedMetrics {
        let mut m = TestbedMetrics::default();
        for s in &self.shards {
            for link in &s.access {
                m.access.absorb(link.forward.stats());
                m.access.absorb(link.reverse.stats());
            }
            for node in &s.nodes {
                if let Some(att) = node.umts_attachment() {
                    m.uplink.absorb(att.uplink_stats());
                    m.downlink.absorb(att.downlink_stats());
                    m.rrc_transitions += att.rrc_transitions();
                    m.ppp_transitions += att.ppp_transitions();
                }
            }
        }
        m.drops = self.drops();
        m.events = self.events_processed();
        m
    }

    /// Runs until `horizon`, advancing the shards serially.
    pub fn run_until(&mut self, horizon: Instant) {
        self.run_until_with(horizon, |shards, end| {
            for s in shards.iter_mut() {
                s.run_window(end);
            }
        });
    }

    /// Runs for a relative span (serially).
    pub fn run_for(&mut self, span: Duration) {
        let horizon = self.clock + span;
        self.run_until(horizon);
    }

    /// Runs until `horizon`, letting the caller fan each window out over
    /// the shards (`run(shards, end)` must advance every shard to `end`;
    /// order and parallelism are free). Message exchange happens here, on
    /// the caller's thread, at every boundary.
    pub fn run_until_with(&mut self, horizon: Instant, run: impl FnMut(&mut [Shard], Instant)) {
        if horizon <= self.clock {
            return;
        }
        if self.routes_dirty {
            self.routes_dirty = false;
            let arc = Arc::new(self.routes.clone());
            for s in &mut self.shards {
                s.routes = Arc::clone(&arc);
            }
        }
        let lookahead = self.lookahead();
        let nshards = self.shards.len();
        drive(&mut self.shards, self.clock, horizon, lookahead, run, |shards, _end| {
            // Exchange: route every staged handoff to its owning shard's
            // inbox. Collection order is irrelevant — each inbox re-sorts
            // into canonical order before injecting.
            let mut batches: Vec<Vec<Handoff>> = (0..nshards).map(|_| Vec::new()).collect();
            for s in shards.iter_mut() {
                for h in s.outbox.take() {
                    batches[h.dst as usize % nshards].push(h);
                }
            }
            for (s, batch) in shards.iter_mut().zip(batches) {
                if !batch.is_empty() {
                    s.inbox.accept(batch);
                }
            }
        });
        self.clock = horizon;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest};

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn wired_pair(nshards: usize, seed: u64) -> (ShardedTestbed, GlobalNodeId, GlobalNodeId) {
        let mut tb = ShardedTestbed::new(nshards, seed);
        let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));
        let n1 = tb.add_node(
            "napoli",
            a("143.225.229.5"),
            "143.225.229.0/24".parse().unwrap(),
            a("143.225.229.1"),
            access.clone(),
        );
        let n2 = tb.add_node(
            "inria",
            a("138.96.20.10"),
            "138.96.20.0/24".parse().unwrap(),
            a("138.96.20.1"),
            access,
        );
        (tb, n1, n2)
    }

    fn wired_flow_trace(nshards: usize) -> Vec<(u32, u64)> {
        let (mut tb, n1, n2) = wired_pair(nshards, 1);
        let s_tx = tb.node_mut(n1).slices.create("tx");
        let s_rx = tb.node_mut(n2).slices.create("rx");
        let spec = FlowSpec::cbr(80_000, 100, Duration::from_secs(2));
        let dport = spec.dport;
        let tx = tb.add_sender(n1, s_tx, spec, a("138.96.20.10"), Instant::from_millis(100));
        let rx = tb.add_receiver(n2, s_rx, dport, tx, true);
        tb.run_until(Instant::from_secs(5));
        let (sent, rtts) = tb.sender_logs(tx);
        assert_eq!(sent.len(), 200, "100 pps * 2 s");
        assert_eq!(rtts.len(), 200, "every probe echoed");
        tb.receiver_records(rx).iter().map(|r| (r.seq, r.rx.total_micros())).collect()
    }

    #[test]
    fn wired_flow_end_to_end_across_shards() {
        let t1 = wired_flow_trace(1);
        assert_eq!(t1.len(), 200, "wired path loses nothing");
        for n in [2, 3] {
            assert_eq!(wired_flow_trace(n), t1, "shard count {n} must not change the trace");
        }
    }

    #[test]
    fn umts_flow_end_to_end_sharded() {
        let (mut tb, n1, n2) = wired_pair(2, 2);
        tb.attach_umts(
            n1,
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
        );
        let s_umts = tb.node_mut(n1).slices.create("unina_umts");
        tb.node_mut(n1).grant_umts_access(s_umts);
        let s_rx = tb.node_mut(n2).slices.create("rx");

        tb.node_mut(n1).vsys_submit(s_umts, UmtsRequest::Start).unwrap();
        tb.run_until(Instant::from_secs(15));
        assert_eq!(tb.node(n1).umts_status().phase, UmtsPhase::Up);

        tb.node_mut(n1)
            .vsys_submit(s_umts, UmtsRequest::AddDestination(Ipv4Cidr::host(a("138.96.20.10"))))
            .unwrap();
        tb.run_for(Duration::from_millis(100));

        let start = tb.now() + Duration::from_millis(500);
        let spec = FlowSpec::cbr(64_000, 100, Duration::from_secs(3));
        let dport = spec.dport;
        let tx = tb.add_sender(n1, s_umts, spec, a("138.96.20.10"), start);
        let rx = tb.add_receiver(n2, s_rx, dport, tx, true);
        tb.run_for(Duration::from_secs(10));

        let (sent, rtts) = tb.sender_logs(tx);
        let recv = tb.receiver_records(rx);
        assert_eq!(sent.len(), 240, "80 pps * 3 s");
        assert!(recv.len() > 220, "light flow mostly survives: {}", recv.len());
        assert!(!rtts.is_empty());
        let mean_rtt: u64 =
            rtts.iter().map(|r| r.rtt.total_micros()).sum::<u64>() / rtts.len() as u64;
        assert!(mean_rtt > 150_000, "umts rtt {mean_rtt}us should be >150ms");
    }

    #[test]
    fn phased_runs_match_unphased_runs() {
        // Stopping and restarting mid-simulation must not change results:
        // the window boundaries are absolute, not phase-relative.
        let run = |phased: bool| {
            let (mut tb, n1, n2) = wired_pair(2, 11);
            let s_tx = tb.node_mut(n1).slices.create("tx");
            let s_rx = tb.node_mut(n2).slices.create("rx");
            let spec = FlowSpec::poisson(150.0, 200, Duration::from_secs(2));
            let dport = spec.dport;
            let tx = tb.add_sender(n1, s_tx, spec, a("138.96.20.10"), Instant::ZERO);
            let rx = tb.add_receiver(n2, s_rx, dport, tx, false);
            if phased {
                tb.run_until(Instant::from_millis(333));
                tb.run_until(Instant::from_millis(1_234));
                tb.run_until(Instant::from_secs(4));
            } else {
                tb.run_until(Instant::from_secs(4));
            }
            let _ = tx;
            tb.receiver_records(rx).iter().map(|r| (r.seq, r.rx)).collect::<Vec<_>>()
        };
        let a = run(false);
        assert!(!a.is_empty());
        assert_eq!(a, run(true));
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let (mut tb, n1, _n2) = wired_pair(2, 3);
        let s = tb.node_mut(n1).slices.create("tx");
        let spec = FlowSpec::cbr(8_000, 100, Duration::from_millis(200));
        let _tx = tb.add_sender(n1, s, spec, a("203.0.113.99"), Instant::ZERO);
        tb.run_until(Instant::from_secs(1));
        assert!(tb.drops().core_unroutable > 0);
    }

    #[test]
    fn metrics_are_shard_count_invariant() {
        let snapshot = |nshards: usize| {
            let (mut tb, n1, n2) = wired_pair(nshards, 5);
            let s_tx = tb.node_mut(n1).slices.create("tx");
            let s_rx = tb.node_mut(n2).slices.create("rx");
            let spec = FlowSpec::cbr(64_000, 120, Duration::from_secs(1));
            let dport = spec.dport;
            let tx = tb.add_sender(n1, s_tx, spec, a("138.96.20.10"), Instant::ZERO);
            let _rx = tb.add_receiver(n2, s_rx, dport, tx, true);
            tb.run_until(Instant::from_secs(3));
            tb.metrics()
        };
        let m1 = snapshot(1);
        assert!(m1.access.pushed > 0);
        assert_eq!(m1, snapshot(2), "metrics must not depend on the partition");
    }
}
