//! # umtslab — a simulated reproduction of *"Providing UMTS connectivity
//! to PlanetLab nodes"* (Botta et al., ROADS/CoNEXT 2008)
//!
//! The paper integrates 3G (UMTS) uplinks into PlanetLab: slices dial a
//! PPP session over a cellular modem, steer selected traffic over it via
//! policy routing and packet marks, and stay isolated from each other
//! through an egress firewall rule — all controlled by a `umts` vsys
//! command. The original work is tied to physical hardware (3G cards, a
//! commercial operator, PlanetLab machines); this workspace rebuilds every
//! layer as a deterministic discrete-event simulation and reproduces the
//! paper's complete evaluation (Figures 1–7).
//!
//! ## Layers (one crate each)
//!
//! * [`umtslab_sim`] — event kernel: virtual time, deterministic queue,
//!   seeded RNG;
//! * [`umtslab_net`] — packets with real wire formats, links, queues,
//!   fault injection, policy routing, netfilter;
//! * [`umtslab_umts`] — the access network: AT-command modem, full PPP
//!   (LCP/PAP/IPCP over HDLC framing), RRC state machine with on-demand
//!   grant upgrades, radio bearers, operator profiles and GGSN firewall;
//! * [`umtslab_planetlab`] — nodes, slices, vsys, and the `umts` command
//!   back-end installing the paper's exact routing recipe;
//! * [`umtslab_ditg`] — the D-ITG-style traffic generator and ITGDec-style
//!   windowed decoder;
//! * this crate — the testbed assembly, experiment runner and paper
//!   presets, plus the sharded core ([`shard`]) that partitions one
//!   coupled topology across N deterministic schedulers and the
//!   [`fleet`] scale demo built on it.
//!
//! ## Quickstart
//!
//! ```
//! use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
//! use umtslab::prelude::*;
//!
//! // Run a short VoIP-like flow over the wired path.
//! let mut spec = FlowSpec::voip_g711();
//! spec.duration = Duration::from_secs(2);
//! let cfg = ExperimentConfig::paper(spec, PathKind::EthernetToEthernet, 42);
//! let result = run_experiment(cfg).unwrap();
//! assert_eq!(result.summary.lost, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod crosslayer;
pub mod experiment;
pub mod fleet;
pub mod paper;
pub mod shard;
pub mod testbed;

pub use chaos::{run_chaos_campaign, ChaosConfig, ChaosReport};
pub use crosslayer::{run_switching_policy, CrosslayerConfig};
pub use experiment::{
    run_experiment, run_supervised_experiment, AccessLink, ExperimentConfig, ExperimentError,
    ExperimentResult, ExtraSlice, FlowModel, NodeRole, PathKind, SlicePlan, SupervisedResult,
    TwoNodeTestbed, INRIA_ADDR, NAPOLI_ADDR,
};
pub use fleet::{render_metrics_json, run_fleet, run_fleet_with, FleetConfig, FleetReport};
pub use paper::{
    assemble_paper_run, campaign_seeds, metric_points, paper_jobs, render_series, run_paper,
    run_workload, shape_checks, summary_row, Figure, Metric, PaperJob, PaperRun, PathPair,
    ShapeCheck, Workload, FIGURES,
};
pub use shard::{GlobalAgentId, GlobalNodeId, Shard, ShardedTestbed};
pub use testbed::{AgentId, NodeId, Testbed, TestbedDrops, TestbedMetrics};

/// Common imports for examples and benches.
///
/// ```
/// use umtslab::prelude::*;
///
/// // Everything a measurement script needs is one import away.
/// let mut spec = FlowSpec::cbr_1mbps();
/// spec.duration = Duration::from_secs(1);
/// assert_eq!(spec.label, "cbr-1mbps");
/// assert!(spec.nominal_bps().unwrap() > 0.9e6);
/// ```
pub mod prelude {
    pub use umtslab_ditg::{Decoder, FlowSpec, TrafficReceiver, TrafficSender};
    pub use umtslab_net::link::{JitterModel, LinkConfig};
    pub use umtslab_net::packet::{Mark, Packet};
    pub use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr};
    pub use umtslab_planetlab::node::{Node, ETH0, PPP0};
    pub use umtslab_planetlab::slice::SliceId;
    pub use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest, UmtsResponse};
    pub use umtslab_sim::time::{Duration, Instant};
    pub use umtslab_supervisor::backoff::BackoffConfig;
    pub use umtslab_supervisor::faults::{CampaignConfig, FaultPlan};
    pub use umtslab_supervisor::metrics::AvailabilityMetrics;
    pub use umtslab_supervisor::supervisor::{
        SessionSupervisor, SupervisorConfig, SupervisorState,
    };
    pub use umtslab_umts::at::DeviceProfile;
    pub use umtslab_umts::attachment::SessionFault;
    pub use umtslab_umts::operator::OperatorProfile;
    pub use umtslab_umts::ppp::Credentials;
}

// Re-export the sub-crates for doc links and advanced use.
pub use umtslab_ditg;
pub use umtslab_net;
pub use umtslab_planetlab;
pub use umtslab_sim;
pub use umtslab_supervisor;
pub use umtslab_traffic;
pub use umtslab_umts;
