//! The testbed: nodes, access links, the internet core and the event loop.
//!
//! [`Testbed`] wires [`umtslab_planetlab::Node`]s to a simple internet
//! core through per-node access links, owns the global event scheduler,
//! and hosts the D-ITG traffic agents. It is the layer that corresponds
//! to "Private OneLab": a small set of PlanetLab nodes, one of which
//! carries a 3G card.
//!
//! Topology model: every node's `eth0` connects to the core over a
//! [`DuplexLink`] (the access + research-network path); the core forwards
//! by destination address to the owning node's access link, or — for
//! addresses assigned by an operator — into that node's UMTS downlink.

use std::collections::BTreeMap;

use umtslab_ditg::{FlowSpec, TrafficReceiver, TrafficSender};
use umtslab_net::bytes::BufferPool;
use umtslab_net::label::Label;
use umtslab_net::link::{DuplexLink, LinkConfig, LinkStats, PushOutcome};
use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::{EgressAction, Node, ETH0};
use umtslab_planetlab::slice::SliceId;
use umtslab_sim::event::EventHandle;
use umtslab_sim::rng::SimRng;
use umtslab_sim::sched::Scheduler;
use umtslab_sim::time::{Duration, Instant};
use umtslab_supervisor::faults::FaultPlan;
use umtslab_supervisor::metrics::AvailabilityMetrics;
use umtslab_supervisor::supervisor::{SessionSupervisor, SupervisorConfig};
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::attachment::{DownlinkOutcome, UmtsAttachment};
use umtslab_umts::bearer::BearerStats;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

/// Handle to a node in the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Handle to a traffic agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub usize);

/// Counters of packets the testbed had to discard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestbedDrops {
    /// No node owns the destination address.
    pub core_unroutable: u64,
    /// The operator firewall refused an inbound packet.
    pub operator_firewall: u64,
    /// The node stack dropped on egress (no route / filter / queue).
    pub node_egress: u64,
    /// The UMTS downlink bearer was not connected / overflowed.
    pub umts_downlink: u64,
}

/// A point-in-time snapshot of every counter the testbed's layers expose.
///
/// This is what one experiment publishes into the runner's metrics
/// registry; see `docs/METRICS.md` for the meaning, unit and emitting
/// layer of every field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestbedMetrics {
    /// Access-link counters, summed over the forward and reverse pipes of
    /// every node's wired access link.
    pub access: LinkStats,
    /// Radio uplink bearer counters, summed over every UMTS attachment.
    pub uplink: BearerStats,
    /// Radio downlink bearer counters, summed over every UMTS attachment.
    pub downlink: BearerStats,
    /// RRC state transitions (Idle/FACH/DCH moves and grant upgrades).
    pub rrc_transitions: u64,
    /// PPP phase transitions (LCP/PAP/IPCP progress and teardowns).
    pub ppp_transitions: u64,
    /// Packets the testbed core had to discard, by cause.
    pub drops: TestbedDrops,
    /// Scheduler events processed (the simulation's cost metric).
    pub events: u64,
}

enum Ev {
    /// Re-poll a node's internal machinery.
    NodeWake(usize),
    /// A packet reached the internet core from a node's access link (or an
    /// operator edge).
    CoreArrive(Packet),
    /// A packet reached a node's `eth0`.
    NodeArrive { node: usize, packet: Packet },
    /// A traffic sender's next departure.
    AgentSend(usize),
}

/// A traffic source of any flow model, behind one dispatch surface so
/// the event loop treats open-loop probes, closed-loop TCP flows and
/// rate-adaptive streams identically.
enum SenderAgent {
    /// Open-loop D-ITG probe sender (the original workload).
    OpenLoop(TrafficSender),
    /// Closed-loop congestion-controlled flow.
    Tcp(umtslab_traffic::TcpFlow),
    /// Delivered-rate adaptive (video-like) sender.
    Adaptive(umtslab_traffic::AdaptiveSender),
}

impl SenderAgent {
    fn emit(
        &mut self,
        now: Instant,
        ids: &mut PacketIdAllocator,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        match self {
            SenderAgent::OpenLoop(a) => a.emit(now, ids, pool),
            SenderAgent::Tcp(a) => a.emit(now, ids, pool),
            SenderAgent::Adaptive(a) => a.emit(now, ids, pool),
        }
    }

    fn next_departure(&self, now: Instant) -> Option<Instant> {
        match self {
            SenderAgent::OpenLoop(a) => a.next_departure(),
            SenderAgent::Tcp(a) => a.next_departure(now),
            SenderAgent::Adaptive(a) => a.next_departure(),
        }
    }

    fn on_receive(&mut self, now: Instant, packet: &Packet) {
        match self {
            SenderAgent::OpenLoop(a) => a.on_receive(now, packet),
            SenderAgent::Tcp(a) => a.on_receive(now, packet),
            SenderAgent::Adaptive(a) => a.on_receive(now, packet),
        }
    }

    fn sent(&self) -> &[umtslab_ditg::SentRecord] {
        match self {
            SenderAgent::OpenLoop(a) => a.sent(),
            SenderAgent::Tcp(a) => a.sent(),
            SenderAgent::Adaptive(a) => a.sent(),
        }
    }

    fn rtts(&self) -> &[umtslab_ditg::RttRecord] {
        match self {
            SenderAgent::OpenLoop(a) => a.rtts(),
            SenderAgent::Tcp(a) => a.rtts(),
            SenderAgent::Adaptive(a) => a.rtts(),
        }
    }

    fn start_time(&self) -> Instant {
        match self {
            SenderAgent::OpenLoop(a) => a.start_time(),
            SenderAgent::Tcp(a) => a.start_time(),
            SenderAgent::Adaptive(a) => a.start_time(),
        }
    }

    /// Whether acknowledgements can reopen this sender's transmission
    /// window (closed-loop flows need an `AgentSend` re-arm on receive).
    fn closed_loop(&self) -> bool {
        matches!(self, SenderAgent::Tcp(_))
    }
}

enum AgentSlot {
    // The sender is boxed: closed-loop flow state dwarfs a receiver slot.
    Sender { node: usize, slice: SliceId, agent: Box<SenderAgent> },
    Receiver { agent: TrafficReceiver },
}

/// The simulated testbed.
pub struct Testbed {
    sched: Scheduler<Ev>,
    nodes: Vec<Node>,
    access: Vec<DuplexLink>,
    wake_armed: Vec<Option<(Instant, EventHandle)>>,
    /// Per-node session supervisor (the watchdog daemon), if attached.
    supervisors: Vec<Option<SessionSupervisor>>,
    /// Per-node scheduled fault campaign, if any.
    fault_plans: Vec<Option<FaultPlan>>,
    agents: Vec<AgentSlot>,
    /// Receiver lookup: (node, port) → agent index. Ordered map so that
    /// any future iteration (diagnostics, sharding) is deterministic.
    rx_ports: BTreeMap<(usize, u16), usize>,
    /// Sender lookup for echo replies: (node, port) → agent index.
    tx_ports: BTreeMap<(usize, u16), usize>,
    ids: PacketIdAllocator,
    rng: SimRng,
    drops: TestbedDrops,
    /// Subscribers already attached per operator name, used to carve
    /// disjoint address-pool slices so concurrent attachments to the same
    /// operator never collide. Keyed by interned label: attaching never
    /// allocates a lookup string.
    operator_subscribers: BTreeMap<Label, u32>,
    /// Recycles retired payload allocations back to the traffic senders,
    /// so steady-state emission allocates nothing.
    pool: BufferPool,
}

impl Testbed {
    /// Creates an empty testbed with a master seed.
    pub fn new(seed: u64) -> Testbed {
        Testbed {
            sched: Scheduler::new(),
            nodes: Vec::new(),
            access: Vec::new(),
            wake_armed: Vec::new(),
            supervisors: Vec::new(),
            fault_plans: Vec::new(),
            agents: Vec::new(),
            rx_ports: BTreeMap::new(),
            tx_ports: BTreeMap::new(),
            ids: PacketIdAllocator::new(),
            rng: SimRng::seed_from_u64(seed),
            drops: TestbedDrops::default(),
            operator_subscribers: BTreeMap::new(),
            pool: BufferPool::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.sched.now()
    }

    /// Drop counters.
    pub fn drops(&self) -> TestbedDrops {
        self.drops
    }

    /// Total events processed by the scheduler.
    pub fn events_processed(&self) -> u64 {
        self.sched.events_processed()
    }

    /// Snapshots every layer's counters into one [`TestbedMetrics`].
    ///
    /// Cheap (a walk over nodes and links copying plain counters), so it
    /// can be taken at any point of a run, not just at the end.
    pub fn metrics(&self) -> TestbedMetrics {
        let mut m = TestbedMetrics::default();
        for link in &self.access {
            m.access.absorb(link.forward.stats());
            m.access.absorb(link.reverse.stats());
        }
        for node in &self.nodes {
            if let Some(att) = node.umts_attachment() {
                m.uplink.absorb(att.uplink_stats());
                m.downlink.absorb(att.downlink_stats());
                m.rrc_transitions += att.rrc_transitions();
                m.ppp_transitions += att.ppp_transitions();
            }
        }
        m.drops = self.drops;
        m.events = self.sched.events_processed();
        m
    }

    /// Adds a node with a configured `eth0` and an access link to the
    /// internet core. The access link models the whole node↔core path
    /// (campus network + research backbone share).
    pub fn add_node(
        &mut self,
        name: impl Into<umtslab_net::Label>,
        eth_addr: Ipv4Address,
        subnet: Ipv4Cidr,
        gateway: Ipv4Address,
        access: LinkConfig,
    ) -> NodeId {
        let mut node = Node::new(name);
        node.configure_eth(eth_addr, subnet, gateway);
        self.nodes.push(node);
        self.access.push(DuplexLink::symmetric(access));
        self.wake_armed.push(None);
        self.supervisors.push(None);
        self.fault_plans.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Installs a 3G card + operator attachment on a node.
    pub fn attach_umts(
        &mut self,
        node: NodeId,
        mut operator: OperatorProfile,
        device: DeviceProfile,
        credentials: Option<Credentials>,
    ) {
        // Each subscriber of the same operator gets a disjoint /24 slice
        // of the pool, as a real GGSN's per-session allocation guarantees:
        // without this, two nodes on one operator would be assigned the
        // same address and the core could not route to either.
        let index = self.operator_subscribers.entry(Label::intern(&operator.name)).or_insert(0);
        if let Some(slice) = operator.pool.subnet(24, *index) {
            operator.pool = slice;
        }
        *index += 1;
        let seed = self.rng.next_u64();
        let att = UmtsAttachment::new(operator, device, credentials, seed, self.now());
        self.nodes[node.0].attach_umts(att);
    }

    /// Installs a session supervisor (the pppd watchdog daemon) for
    /// `slice` on `node`, replacing any previous one. The supervisor's
    /// backoff jitter is seeded from the testbed's master seed.
    pub fn attach_supervisor(&mut self, node: NodeId, slice: SliceId, config: SupervisorConfig) {
        let rng = SimRng::seed_from_u64(self.rng.next_u64());
        self.supervisors[node.0] = Some(SessionSupervisor::new(slice, config, rng));
    }

    /// Tells the supervisor on `node` to dial; it redials on its own from
    /// here on. Panics if no supervisor is attached.
    pub fn start_supervisor(&mut self, node: NodeId) {
        let now = self.now();
        let sup = self.supervisors[node.0].as_mut().expect("supervisor attached");
        sup.start(now, &mut self.nodes[node.0]);
        self.arm_node(node.0);
    }

    /// Schedules a fault campaign against `node`'s UMTS stack; due faults
    /// are injected as the simulation crosses their instants.
    pub fn schedule_faults(&mut self, node: NodeId, plan: FaultPlan) {
        self.fault_plans[node.0] = Some(plan);
        self.arm_node(node.0);
    }

    /// The supervisor attached to `node`, if any.
    pub fn supervisor(&self, node: NodeId) -> Option<&SessionSupervisor> {
        self.supervisors[node.0].as_ref()
    }

    /// Folds the tail interval into `node`'s supervisor metrics and
    /// returns the availability snapshot.
    pub fn availability(&mut self, node: NodeId) -> Option<AvailabilityMetrics> {
        let now = self.now();
        self.supervisors[node.0].as_mut().map(|s| s.finish(now))
    }

    /// Shared access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (for slices, vsys, bindings).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// All nodes in id order (read-only; used by analyzers and reports).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The ids of all nodes, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Runs the cheap per-node isolation audit ([`Node::audit`]) across
    /// the whole testbed, prefixing findings with the node name.
    pub fn audit(&self) -> Vec<String> {
        self.nodes
            .iter()
            .flat_map(|n| {
                let name = n.name;
                n.audit().into_iter().map(move |f| format!("{name}: {f}"))
            })
            .collect()
    }

    /// Adds a traffic sender on `node`/`slice` toward `dst_addr`. The
    /// first departure is scheduled at `start`.
    ///
    /// The sender's source address is left unspecified so the node's
    /// routing fills it (this is how the UMTS path acquires the `ppp0`
    /// source address).
    pub fn add_sender(
        &mut self,
        node: NodeId,
        slice: SliceId,
        spec: FlowSpec,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> AgentId {
        let flow_id = self.agents.len() as u32 + 1;
        let seed = self.rng.next_u64();
        let sport = spec.sport;
        let agent =
            TrafficSender::new(spec, flow_id, Ipv4Address::UNSPECIFIED, dst_addr, start, seed);
        self.install_sender(node, slice, sport, SenderAgent::OpenLoop(agent), start)
    }

    /// Adds a closed-loop congestion-controlled (TCP-ish) sender on
    /// `node`/`slice` toward `dst_addr`. Echo replies arriving on the
    /// bound source port act as acknowledgements and reopen the window.
    pub fn add_tcp_sender(
        &mut self,
        node: NodeId,
        slice: SliceId,
        config: umtslab_traffic::TcpConfig,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> AgentId {
        let flow_id = self.agents.len() as u32 + 1;
        // Keep the per-sender RNG draw even though the flow itself is
        // RNG-free, so adding a TCP flow does not shift the seeds handed
        // to any open-loop senders created after it.
        let _ = self.rng.next_u64();
        let sport = config.sport;
        let agent = umtslab_traffic::TcpFlow::new(
            config,
            flow_id,
            Ipv4Address::UNSPECIFIED,
            dst_addr,
            start,
        );
        self.install_sender(node, slice, sport, SenderAgent::Tcp(agent), start)
    }

    /// Adds a deterministic rate-adaptive (video-like) sender on
    /// `node`/`slice` toward `dst_addr`.
    pub fn add_adaptive_sender(
        &mut self,
        node: NodeId,
        slice: SliceId,
        config: umtslab_traffic::AdaptiveConfig,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> AgentId {
        let flow_id = self.agents.len() as u32 + 1;
        let _ = self.rng.next_u64(); // see add_tcp_sender
        let sport = config.sport;
        let agent = umtslab_traffic::AdaptiveSender::new(
            config,
            flow_id,
            Ipv4Address::UNSPECIFIED,
            dst_addr,
            start,
        );
        self.install_sender(node, slice, sport, SenderAgent::Adaptive(agent), start)
    }

    fn install_sender(
        &mut self,
        node: NodeId,
        slice: SliceId,
        sport: u16,
        agent: SenderAgent,
        start: Instant,
    ) -> AgentId {
        // Bind the source port so echo replies reach the sender.
        let _ = self.nodes[node.0].bind(slice, sport);
        let idx = self.agents.len();
        self.agents.push(AgentSlot::Sender { node: node.0, slice, agent: Box::new(agent) });
        self.tx_ports.insert((node.0, sport), idx);
        self.sched.at(start.max(self.now()), Ev::AgentSend(idx));
        AgentId(idx)
    }

    /// The congestion-control counters of a TCP sender, if `id` is one.
    pub fn tcp_stats(&self, id: AgentId) -> Option<umtslab_traffic::TcpStats> {
        match &self.agents[id.0] {
            AgentSlot::Sender { agent, .. } => match agent.as_ref() {
                SenderAgent::Tcp(f) => Some(f.stats()),
                _ => None,
            },
            _ => None,
        }
    }

    /// The ladder history of an adaptive sender, if `id` is one.
    pub fn adaptive_level_changes(&self, id: AgentId) -> Option<&[umtslab_traffic::LevelChange]> {
        match &self.agents[id.0] {
            AgentSlot::Sender { agent, .. } => match agent.as_ref() {
                SenderAgent::Adaptive(s) => Some(s.level_changes()),
                _ => None,
            },
            _ => None,
        }
    }

    /// Cumulative RRC dwell times of `node`'s UMTS attachment, if any.
    pub fn rrc_dwell(&self, node: NodeId) -> Option<umtslab_umts::RrcDwell> {
        let now = self.now();
        self.nodes[node.0].umts_attachment().map(|att| att.rrc_dwell(now))
    }

    /// Summed RRC dwell times over every UMTS attachment in the testbed
    /// (the two-node experiment has at most one).
    pub fn rrc_dwell_total(&self) -> Option<umtslab_umts::RrcDwell> {
        let now = self.now();
        let mut total: Option<umtslab_umts::RrcDwell> = None;
        for node in &self.nodes {
            if let Some(att) = node.umts_attachment() {
                let d = att.rrc_dwell(now);
                let t = total.get_or_insert_with(Default::default);
                t.idle += d.idle;
                t.fach += d.fach;
                t.dch += d.dch;
                t.dch_upgraded += d.dch_upgraded;
                t.idle_promotions += d.idle_promotions;
                t.idle_promotion_latency += d.idle_promotion_latency;
            }
        }
        total
    }

    /// Installs a trace-replay [`LinkSchedule`] on both directions of
    /// `node`'s wired access link, anchored at the current sim time.
    /// Capacity and loss then follow the schedule instead of the static
    /// [`LinkConfig`] until [`Testbed::clear_access_schedule`].
    ///
    /// [`LinkSchedule`]: umtslab_net::link::LinkSchedule
    /// [`LinkConfig`]: umtslab_net::link::LinkConfig
    pub fn set_access_schedule(
        &mut self,
        node: NodeId,
        schedule: std::sync::Arc<umtslab_net::link::LinkSchedule>,
    ) {
        let start = self.now();
        let link = &mut self.access[node.0];
        link.forward.set_schedule(schedule.clone(), start);
        link.reverse.set_schedule(schedule, start);
    }

    /// Removes any trace-replay schedule from `node`'s access link.
    pub fn clear_access_schedule(&mut self, node: NodeId) {
        let link = &mut self.access[node.0];
        link.forward.clear_schedule();
        link.reverse.clear_schedule();
    }

    /// Adds a traffic receiver on `node`/`slice` listening on `port` for
    /// flow `of_sender`.
    pub fn add_receiver(
        &mut self,
        node: NodeId,
        slice: SliceId,
        port: u16,
        of_sender: AgentId,
        echo: bool,
    ) -> AgentId {
        let flow_id = of_sender.0 as u32 + 1;
        let agent = TrafficReceiver::new(flow_id, echo);
        let _ = self.nodes[node.0].bind(slice, port);
        let idx = self.agents.len();
        self.agents.push(AgentSlot::Receiver { agent });
        self.rx_ports.insert((node.0, port), idx);
        AgentId(idx)
    }

    /// The sender-side logs of an agent.
    pub fn sender_logs(
        &self,
        id: AgentId,
    ) -> (&[umtslab_ditg::SentRecord], &[umtslab_ditg::RttRecord]) {
        match &self.agents[id.0] {
            AgentSlot::Sender { agent, .. } => (agent.sent(), agent.rtts()),
            AgentSlot::Receiver { .. } => (&[], &[]),
        }
    }

    /// The flow start time of a sender.
    pub fn sender_start(&self, id: AgentId) -> Option<Instant> {
        match &self.agents[id.0] {
            AgentSlot::Sender { agent, .. } => Some(agent.start_time()),
            AgentSlot::Receiver { .. } => None,
        }
    }

    /// The receive log of an agent.
    pub fn receiver_records(&self, id: AgentId) -> &[umtslab_ditg::RecvRecord] {
        match &self.agents[id.0] {
            AgentSlot::Receiver { agent } => agent.records(),
            AgentSlot::Sender { .. } => &[],
        }
    }

    /// Runs the simulation until `horizon` (exclusive of later events).
    pub fn run_until(&mut self, horizon: Instant) {
        // In debug builds, refuse to simulate a structurally broken
        // configuration (mark collisions, stale UMTS policy state): the
        // dynamic run would silently violate the isolation the paper's
        // rule set promises. Release builds skip the walk entirely.
        #[cfg(debug_assertions)]
        {
            let findings = self.audit();
            debug_assert!(findings.is_empty(), "testbed audit failed: {findings:?}");
        }
        // Ensure every node with internal work is armed before we start.
        for i in 0..self.nodes.len() {
            self.arm_node(i);
        }
        while let Some(ev) = self.sched.next_before(horizon) {
            self.dispatch(ev);
        }
    }

    /// Runs for a relative span.
    pub fn run_for(&mut self, span: Duration) {
        let horizon = self.now() + span;
        self.run_until(horizon);
    }

    // --- internals ------------------------------------------------------

    fn dispatch(&mut self, ev: Ev) {
        let now = self.sched.now();
        match ev {
            Ev::NodeWake(i) => {
                self.wake_armed[i] = None;
                self.poll_node(now, i);
            }
            Ev::CoreArrive(packet) => self.route_from_core(now, packet),
            Ev::NodeArrive { node, packet } => {
                let delivery = self.nodes[node].ingress(now, ETH0, packet);
                if delivery.is_some() {
                    self.flush_deliveries(now, node);
                }
                // Ingress may have queued kernel work (ICMP replies).
                self.arm_node(node);
            }
            Ev::AgentSend(idx) => self.agent_send(now, idx),
        }
    }

    fn agent_send(&mut self, now: Instant, idx: usize) {
        let AgentSlot::Sender { node, slice, agent } = &mut self.agents[idx] else {
            return;
        };
        let node_idx = *node;
        let slice = *slice;
        let Some(packet) = agent.emit(now, &mut self.ids, &mut self.pool) else {
            // Spurious wake; re-arm if the flow continues.
            if let Some(next) = agent.next_departure(now) {
                self.sched.at(next.max(now), Ev::AgentSend(idx));
            }
            return;
        };
        if let Some(next) = agent.next_departure(now) {
            self.sched.at(next.max(now), Ev::AgentSend(idx));
        }
        self.egress(now, node_idx, slice, packet);
    }

    fn egress(&mut self, now: Instant, node_idx: usize, slice: SliceId, packet: Packet) {
        match self.nodes[node_idx].send_from_slice(now, slice, packet) {
            EgressAction::Wire { iface: _, packet } => {
                let pipe = &mut self.access[node_idx].forward;
                match pipe.push(now, packet, &mut self.rng) {
                    PushOutcome::Scheduled(deliveries) => {
                        for (at, p) in deliveries {
                            self.sched.at(at, Ev::CoreArrive(p));
                        }
                    }
                    PushOutcome::Dropped { .. } => self.drops.node_egress += 1,
                }
            }
            EgressAction::Umts => self.arm_node(node_idx),
            EgressAction::Local => self.flush_deliveries(now, node_idx),
            EgressAction::Dropped(_) => self.drops.node_egress += 1,
        }
    }

    fn route_from_core(&mut self, now: Instant, packet: Packet) {
        let dst = packet.dst.addr;
        // Wired delivery?
        if let Some(i) = self.nodes.iter().position(|n| n.eth_addr() == dst) {
            let pipe = &mut self.access[i].reverse;
            match pipe.push(now, packet, &mut self.rng) {
                PushOutcome::Scheduled(deliveries) => {
                    for (at, p) in deliveries {
                        self.sched.at(at, Ev::NodeArrive { node: i, packet: p });
                    }
                }
                PushOutcome::Dropped { .. } => self.drops.core_unroutable += 1,
            }
            return;
        }
        // UMTS subscriber delivery?
        if let Some(i) = self.nodes.iter().position(|n| n.ppp_addr() == Some(dst)) {
            match self.nodes[i].deliver_umts_downlink(now, packet) {
                DownlinkOutcome::Queued => self.arm_node(i),
                DownlinkOutcome::BlockedByFirewall => self.drops.operator_firewall += 1,
                DownlinkOutcome::DroppedOverflow | DownlinkOutcome::NotConnected => {
                    self.drops.umts_downlink += 1;
                }
            }
            return;
        }
        self.drops.core_unroutable += 1;
    }

    fn poll_node(&mut self, now: Instant, i: usize) {
        // Fire any campaign faults that are due before the node runs, so
        // the fault lands in the same step its instant names.
        if let Some(plan) = self.fault_plans[i].as_mut() {
            for fault in plan.pop_due(now) {
                self.nodes[i].inject_umts_fault(now, fault);
                if let Some(sup) = self.supervisors[i].as_mut() {
                    sup.note_fault();
                }
            }
        }
        let out = self.nodes[i].poll(now);
        if let Some(sup) = self.supervisors[i].as_mut() {
            sup.on_events(now, &out.umts_events, &mut self.nodes[i]);
            sup.poll(now, &mut self.nodes[i]);
        }
        for p in out.to_internet {
            // The packet is at the operator's internet edge now.
            self.sched.at(now, Ev::CoreArrive(p));
        }
        for p in out.wire_tx {
            // Kernel-originated packets (ICMP replies) take the access link.
            let pipe = &mut self.access[i].forward;
            match pipe.push(now, p, &mut self.rng) {
                PushOutcome::Scheduled(deliveries) => {
                    for (at, q) in deliveries {
                        self.sched.at(at, Ev::CoreArrive(q));
                    }
                }
                PushOutcome::Dropped { .. } => self.drops.node_egress += 1,
            }
        }
        self.flush_deliveries(now, i);
        self.arm_node(i);
    }

    fn flush_deliveries(&mut self, now: Instant, node_idx: usize) {
        let deliveries = self.nodes[node_idx].take_delivered();
        for d in deliveries {
            let port = d.packet.dst.port;
            if let Some(&aidx) = self.rx_ports.get(&(node_idx, port)) {
                if let AgentSlot::Receiver { agent, .. } = &mut self.agents[aidx] {
                    let echo = agent.on_receive(d.at, &d.packet, &mut self.ids, &mut self.pool);
                    // The packet dies here: hand its payload allocation
                    // back to the emitters (no-op if still shared).
                    self.pool.reclaim(d.packet.payload);
                    if let Some(echo) = echo {
                        // The echo is emitted by the receiving slice.
                        let slice = d.slice;
                        self.egress(now, node_idx, slice, echo);
                    }
                    continue;
                }
            }
            if let Some(&aidx) = self.tx_ports.get(&(node_idx, port)) {
                if let AgentSlot::Sender { agent, .. } = &mut self.agents[aidx] {
                    agent.on_receive(d.at, &d.packet);
                    // A closed-loop sender's window may have just
                    // reopened: re-arm its send event (spurious wakes
                    // are tolerated by agent_send).
                    if agent.closed_loop() {
                        if let Some(next) = agent.next_departure(now) {
                            self.sched.at(next.max(now), Ev::AgentSend(aidx));
                        }
                    }
                }
            }
            self.pool.reclaim(d.packet.payload);
        }
    }

    fn arm_node(&mut self, i: usize) {
        let mut wake = self.nodes[i].next_wakeup();
        if let Some(sup) = self.supervisors[i].as_ref() {
            wake = match (wake, sup.next_wakeup()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        if let Some(plan) = self.fault_plans[i].as_ref() {
            wake = match (wake, plan.next_due()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let Some(wake) = wake else {
            return;
        };
        let wake = wake.max(self.sched.now());
        if let Some((armed, handle)) = self.wake_armed[i] {
            if armed <= wake {
                return; // an earlier-or-equal wake is already scheduled
            }
            // Re-arming earlier: cancel the stale wake so duplicates never
            // accumulate (a leaked duplicate re-arms itself on every poll
            // and the population persists for the rest of the run).
            self.sched.cancel(handle);
        }
        let handle = self.sched.at(wake, Ev::NodeWake(i));
        self.wake_armed[i] = Some((wake, handle));
    }
}

/// A whole-topology [`Testbed`] is the degenerate single-shard case of the
/// sharded core: its event loop drives behind the same window interface,
/// and with no peers there is nothing to exchange at barriers.
impl umtslab_sim::ShardScheduler for Testbed {
    fn now(&self) -> Instant {
        self.sched.now()
    }

    fn run_window(&mut self, horizon: Instant) {
        self.run_until(horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest};

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn wired_pair(seed: u64) -> (Testbed, NodeId, NodeId) {
        let mut tb = Testbed::new(seed);
        let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));
        let n1 = tb.add_node(
            "napoli",
            a("143.225.229.5"),
            "143.225.229.0/24".parse().unwrap(),
            a("143.225.229.1"),
            access.clone(),
        );
        let n2 = tb.add_node(
            "inria",
            a("138.96.20.10"),
            "138.96.20.0/24".parse().unwrap(),
            a("138.96.20.1"),
            access,
        );
        (tb, n1, n2)
    }

    #[test]
    fn wired_flow_end_to_end() {
        let (mut tb, n1, n2) = wired_pair(1);
        let s_tx = tb.node_mut(n1).slices.create("tx");
        let s_rx = tb.node_mut(n2).slices.create("rx");
        let spec = FlowSpec::cbr(80_000, 100, Duration::from_secs(2));
        let dport = spec.dport;
        let tx = tb.add_sender(n1, s_tx, spec, a("138.96.20.10"), Instant::from_millis(100));
        let rx = tb.add_receiver(n2, s_rx, dport, tx, true);
        tb.run_until(Instant::from_secs(5));

        let (sent, rtts) = tb.sender_logs(tx);
        assert_eq!(sent.len(), 200); // 100 pps * 2 s
        let recv = tb.receiver_records(rx);
        assert_eq!(recv.len(), 200, "wired path loses nothing");
        // RTT ≈ 2 × (6 ms + 6 ms) plus serialization: between 24 and 30 ms.
        assert_eq!(rtts.len(), 200);
        let mean_rtt: u64 =
            rtts.iter().map(|r| r.rtt.total_micros()).sum::<u64>() / rtts.len() as u64;
        assert!((24_000..=32_000).contains(&mean_rtt), "mean rtt {mean_rtt}us");
        assert_eq!(tb.drops(), TestbedDrops::default());
    }

    #[test]
    fn umts_flow_end_to_end() {
        let (mut tb, n1, n2) = wired_pair(2);
        tb.attach_umts(
            n1,
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
        );
        let s_umts = tb.node_mut(n1).slices.create("unina_umts");
        tb.node_mut(n1).grant_umts_access(s_umts);
        let s_rx = tb.node_mut(n2).slices.create("rx");

        // Bring the connection up.
        tb.node_mut(n1).vsys_submit(s_umts, UmtsRequest::Start).unwrap();
        tb.run_until(Instant::from_secs(15));
        assert_eq!(tb.node(n1).umts_status().phase, UmtsPhase::Up);

        // Register the receiver as a UMTS destination.
        tb.node_mut(n1)
            .vsys_submit(s_umts, UmtsRequest::AddDestination(Ipv4Cidr::host(a("138.96.20.10"))))
            .unwrap();
        tb.run_for(Duration::from_millis(100));

        let start = tb.now() + Duration::from_millis(500);
        let spec = FlowSpec::cbr(64_000, 100, Duration::from_secs(3));
        let dport = spec.dport;
        let tx = tb.add_sender(n1, s_umts, spec, a("138.96.20.10"), start);
        let rx = tb.add_receiver(n2, s_rx, dport, tx, true);
        tb.run_for(Duration::from_secs(10));

        let (sent, rtts) = tb.sender_logs(tx);
        let recv = tb.receiver_records(rx);
        assert_eq!(sent.len(), 240); // 80 pps * 3 s
        assert!(recv.len() > 220, "light flow mostly survives: {}", recv.len());
        // Every received packet came with the ppp0 source address.
        let ppp = tb.node(n1).ppp_addr().unwrap();
        // RTT includes both radio legs: must be well above the wired 24 ms.
        assert!(!rtts.is_empty());
        let mean_rtt: u64 =
            rtts.iter().map(|r| r.rtt.total_micros()).sum::<u64>() / rtts.len() as u64;
        assert!(mean_rtt > 150_000, "umts rtt {mean_rtt}us should be >150ms");
        let _ = ppp;
    }

    #[test]
    fn deterministic_given_seed() {
        let runs: Vec<Vec<(u32, u64)>> = (0..2)
            .map(|_| {
                let (mut tb, n1, n2) = wired_pair(7);
                let s_tx = tb.node_mut(n1).slices.create("tx");
                let s_rx = tb.node_mut(n2).slices.create("rx");
                let spec = FlowSpec::poisson(200.0, 300, Duration::from_secs(2));
                let dport = spec.dport;
                let tx = tb.add_sender(n1, s_tx, spec, a("138.96.20.10"), Instant::ZERO);
                let rx = tb.add_receiver(n2, s_rx, dport, tx, false);
                tb.run_until(Instant::from_secs(4));
                let _ = tx;
                tb.receiver_records(rx).iter().map(|r| (r.seq, r.rx.total_micros())).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed must reproduce identical traces");
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn two_umts_nodes_on_one_operator_get_disjoint_addresses() {
        let (mut tb, n1, n2) = wired_pair(9);
        for n in [n1, n2] {
            tb.attach_umts(
                n,
                OperatorProfile::commercial_italy(),
                DeviceProfile::huawei_e620(),
                Some(Credentials::new("web", "web")),
            );
            let s = tb.node_mut(n).slices.create("umts");
            tb.node_mut(n).grant_umts_access(s);
            tb.node_mut(n).vsys_submit(s, UmtsRequest::Start).unwrap();
        }
        tb.run_until(Instant::from_secs(20));
        let a1 = tb.node(n1).ppp_addr().expect("node 1 connected");
        let a2 = tb.node(n2).ppp_addr().expect("node 2 connected");
        assert_ne!(a1, a2, "same-operator subscribers must get distinct addresses");
    }

    #[test]
    fn metrics_snapshot_aggregates_all_layers() {
        let (mut tb, n1, n2) = wired_pair(4);
        tb.attach_umts(
            n1,
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
        );
        let s_umts = tb.node_mut(n1).slices.create("umts");
        tb.node_mut(n1).grant_umts_access(s_umts);
        let s_rx = tb.node_mut(n2).slices.create("rx");
        tb.node_mut(n1).vsys_submit(s_umts, UmtsRequest::Start).unwrap();
        tb.run_until(Instant::from_secs(15));
        tb.node_mut(n1)
            .vsys_submit(s_umts, UmtsRequest::AddDestination(Ipv4Cidr::host(a("138.96.20.10"))))
            .unwrap();
        let spec = FlowSpec::cbr(64_000, 100, Duration::from_secs(2));
        let dport = spec.dport;
        let start = tb.now() + Duration::from_millis(200);
        let tx = tb.add_sender(n1, s_umts, spec, a("138.96.20.10"), start);
        let _rx = tb.add_receiver(n2, s_rx, dport, tx, true);
        tb.run_for(Duration::from_secs(6));

        let m = tb.metrics();
        assert!(m.access.pushed > 0, "wired legs carried traffic");
        assert!(m.uplink.offered > 0, "radio uplink saw the flow");
        assert!(m.uplink.served > 0);
        assert!(m.ppp_transitions >= 4, "LCP/PAP/IPCP walked the phases");
        assert!(m.rrc_transitions >= 1, "the dial promoted out of Idle");
        assert_eq!(m.events, tb.events_processed());
        assert_eq!(m.drops, tb.drops());
        // A snapshot is stable when the simulation has not advanced.
        assert_eq!(m, tb.metrics());
    }

    #[test]
    fn unroutable_packets_are_counted() {
        let (mut tb, n1, _n2) = wired_pair(3);
        let s = tb.node_mut(n1).slices.create("tx");
        let spec = FlowSpec::cbr(8_000, 100, Duration::from_millis(200));
        let _tx = tb.add_sender(n1, s, spec, a("203.0.113.99"), Instant::ZERO);
        tb.run_until(Instant::from_secs(1));
        assert!(tb.drops().core_unroutable > 0);
    }
}
