//! Paper experiment presets: Figures 1–7 and their shape criteria.
//!
//! The paper's evaluation consists of seven figures, all derived from two
//! workloads crossed with two paths:
//!
//! | Figure | Workload | Metric  |
//! |--------|----------|---------|
//! | 1      | VoIP     | bitrate |
//! | 2      | VoIP     | jitter  |
//! | 3      | VoIP     | RTT     |
//! | 4      | 1 Mbps   | bitrate |
//! | 5      | 1 Mbps   | jitter  |
//! | 6      | 1 Mbps   | loss    |
//! | 7      | 1 Mbps   | RTT     |
//!
//! (VoIP loss is reported in text as identically zero.) This module runs
//! those four path×workload combinations and checks the *shape* criteria a
//! reproduction must satisfy — who wins, by roughly what factor, and where
//! the Figure-4 knee falls — without pinning absolute numbers that depend
//! on the authors' operator.

use umtslab_ditg::FlowSpec;
use umtslab_sim::time::{Duration, Instant};

use crate::experiment::{
    run_experiment, ExperimentConfig, ExperimentError, ExperimentResult, PathKind,
};

/// The QoS metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Received bitrate (kbps in the paper's plots).
    Bitrate,
    /// Delay jitter (seconds).
    Jitter,
    /// Packets lost per window.
    Loss,
    /// Round-trip time (seconds).
    Rtt,
}

impl core::fmt::Display for Metric {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Metric::Bitrate => write!(f, "bitrate"),
            Metric::Jitter => write!(f, "jitter"),
            Metric::Loss => write!(f, "loss"),
            Metric::Rtt => write!(f, "rtt"),
        }
    }
}

/// The paper's two workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// 72 kbps G.711-like VoIP CBR.
    VoipG711,
    /// 1 Mbps saturating CBR.
    Cbr1Mbps,
    /// Closed-loop TCP-ish bulk upload (congestion-controlled).
    TcpBulk,
    /// Deterministic rate-adaptive video-like stream.
    AdaptiveVideo,
}

impl Workload {
    /// The flow spec, optionally shortened (tests use short runs; the
    /// figures use the paper's 120 s). For the closed-loop workloads the
    /// spec only contributes the label and duration — the flow model of
    /// [`Workload::flow_model`] does the sending.
    pub fn spec(self, duration: Option<Duration>) -> FlowSpec {
        let mut spec = match self {
            Workload::VoipG711 => FlowSpec::voip_g711(),
            Workload::Cbr1Mbps => FlowSpec::cbr_1mbps(),
            Workload::TcpBulk => {
                FlowSpec { label: "tcp-bulk".to_string(), ..FlowSpec::cbr_1mbps() }
            }
            Workload::AdaptiveVideo => {
                FlowSpec { label: "adaptive-video".to_string(), ..FlowSpec::cbr_1mbps() }
            }
        };
        if let Some(d) = duration {
            spec.duration = d;
        }
        spec
    }

    /// The flow model animating this workload, with the same duration
    /// resolution as [`Workload::spec`].
    pub fn flow_model(self, duration: Option<Duration>) -> crate::experiment::FlowModel {
        use umtslab_traffic::{AdaptiveConfig, TcpConfig};
        let d = duration.unwrap_or(Duration::from_secs(120));
        match self {
            Workload::VoipG711 | Workload::Cbr1Mbps => crate::experiment::FlowModel::OpenLoop,
            Workload::TcpBulk => {
                crate::experiment::FlowModel::Tcp(TcpConfig { duration: d, ..TcpConfig::default() })
            }
            Workload::AdaptiveVideo => crate::experiment::FlowModel::Adaptive(AdaptiveConfig {
                duration: d,
                ..AdaptiveConfig::default()
            }),
        }
    }
}

/// One of the paper's figures.
#[derive(Debug, Clone, Copy)]
pub struct Figure {
    /// Identifier, `fig1` … `fig7`.
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// Workload driving it.
    pub workload: Workload,
    /// Metric plotted.
    pub metric: Metric,
}

/// All seven figures.
pub const FIGURES: [Figure; 7] = [
    Figure {
        id: "fig1",
        title: "Bitrate of the VoIP-like flow",
        workload: Workload::VoipG711,
        metric: Metric::Bitrate,
    },
    Figure {
        id: "fig2",
        title: "Jitter of the VoIP-like flow",
        workload: Workload::VoipG711,
        metric: Metric::Jitter,
    },
    Figure {
        id: "fig3",
        title: "RTT of the VoIP-like flow",
        workload: Workload::VoipG711,
        metric: Metric::Rtt,
    },
    Figure {
        id: "fig4",
        title: "Bitrate of the 1-Mbps flow",
        workload: Workload::Cbr1Mbps,
        metric: Metric::Bitrate,
    },
    Figure {
        id: "fig5",
        title: "Jitter of the 1-Mbps flow",
        workload: Workload::Cbr1Mbps,
        metric: Metric::Jitter,
    },
    Figure {
        id: "fig6",
        title: "Loss of the 1-Mbps flow",
        workload: Workload::Cbr1Mbps,
        metric: Metric::Loss,
    },
    Figure {
        id: "fig7",
        title: "RTT of the 1-Mbps flow",
        workload: Workload::Cbr1Mbps,
        metric: Metric::Rtt,
    },
];

/// Both paths of one workload.
#[derive(Debug, Clone)]
pub struct PathPair {
    /// The UMTS-to-Ethernet run.
    pub umts: ExperimentResult,
    /// The Ethernet-to-Ethernet run.
    pub ethernet: ExperimentResult,
}

/// All the data behind Figures 1–7.
#[derive(Debug, Clone)]
pub struct PaperRun {
    /// VoIP workload (Figures 1–3).
    pub voip: PathPair,
    /// 1 Mbps workload (Figures 4–7).
    pub cbr: PathPair,
}

/// Runs one workload on one path.
pub fn run_workload(
    workload: Workload,
    path: PathKind,
    seed: u64,
    duration: Option<Duration>,
) -> Result<ExperimentResult, ExperimentError> {
    let mut cfg = ExperimentConfig::paper(workload.spec(duration), path, seed);
    cfg.flow_model = workload.flow_model(duration);
    run_experiment(cfg)
}

/// One independent unit of the paper campaign: a workload on a path under
/// a fixed seed.
///
/// A full [`run_paper`] campaign is exactly the four jobs of
/// [`paper_jobs`] run in any order (each builds its own [`crate::Testbed`]
/// from its own seed, so jobs share no state) and reassembled with
/// [`assemble_paper_run`]. This is the unit the parallel runner shards
/// across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperJob {
    /// The traffic workload.
    pub workload: Workload,
    /// The measured path.
    pub path: PathKind,
    /// The master seed of the job's private testbed.
    pub seed: u64,
    /// Flow duration override (`None` = the paper's 120 s).
    pub duration: Option<Duration>,
}

impl PaperJob {
    /// Executes the job to completion on the calling thread.
    pub fn run(&self) -> Result<ExperimentResult, ExperimentError> {
        run_workload(self.workload, self.path, self.seed, self.duration)
    }

    /// A short human-readable identifier, e.g. `voip/UMTS-to-Ethernet`.
    pub fn label(&self) -> String {
        let workload = match self.workload {
            Workload::VoipG711 => "voip",
            Workload::Cbr1Mbps => "cbr-1mbps",
            Workload::TcpBulk => "tcp-bulk",
            Workload::AdaptiveVideo => "adaptive-video",
        };
        format!("{workload}/{}", self.path)
    }
}

/// The four jobs behind one paper campaign, in [`assemble_paper_run`]
/// order: VoIP/UMTS, VoIP/Ethernet, CBR/UMTS, CBR/Ethernet.
///
/// The per-job seeds reproduce [`run_paper`]'s historical scheme exactly
/// (both paths of one workload share a seed; the CBR workload perturbs it
/// with `^ 0x5555`), so results stay byte-identical with older revisions.
pub fn paper_jobs(seed: u64, duration: Option<Duration>) -> [PaperJob; 4] {
    [
        PaperJob { workload: Workload::VoipG711, path: PathKind::UmtsToEthernet, seed, duration },
        PaperJob {
            workload: Workload::VoipG711,
            path: PathKind::EthernetToEthernet,
            seed,
            duration,
        },
        PaperJob {
            workload: Workload::Cbr1Mbps,
            path: PathKind::UmtsToEthernet,
            seed: seed ^ 0x5555,
            duration,
        },
        PaperJob {
            workload: Workload::Cbr1Mbps,
            path: PathKind::EthernetToEthernet,
            seed: seed ^ 0x5555,
            duration,
        },
    ]
}

/// Reassembles the results of [`paper_jobs`] (same order) into a
/// [`PaperRun`].
pub fn assemble_paper_run(results: [ExperimentResult; 4]) -> PaperRun {
    let [voip_umts, voip_eth, cbr_umts, cbr_eth] = results;
    PaperRun {
        voip: PathPair { umts: voip_umts, ethernet: voip_eth },
        cbr: PathPair { umts: cbr_umts, ethernet: cbr_eth },
    }
}

/// The base seed of each repetition of a multi-repetition campaign.
///
/// Repetition `r` uses `base + r * 7919` (wrapping), the scheme the
/// `figures` binary has always used; exposing it lets the parallel runner
/// shard repetitions while reproducing the serial binary bit for bit.
pub fn campaign_seeds(base: u64, reps: usize) -> Vec<u64> {
    (0..reps).map(|r| base.wrapping_add(r as u64 * 7919)).collect()
}

/// Runs the full paper evaluation (both workloads, both paths) serially.
pub fn run_paper(seed: u64, duration: Option<Duration>) -> Result<PaperRun, ExperimentError> {
    let [a, b, c, d] = paper_jobs(seed, duration);
    Ok(assemble_paper_run([a.run()?, b.run()?, c.run()?, d.run()?]))
}

/// Extracts a figure's series as `(seconds since flow start, value)` points.
///
/// Units match the paper's axes: kbps for bitrate, seconds for jitter/RTT,
/// packets per window for loss. Windows with no defined value (e.g. RTT
/// with no answered probe) are skipped.
pub fn metric_points(result: &ExperimentResult, metric: Metric) -> Vec<(f64, f64)> {
    let origin = result.flow_start;
    result
        .series
        .points
        .iter()
        .filter_map(|p| {
            let t = p.start.duration_since(origin).as_secs_f64();
            let v = match metric {
                Metric::Bitrate => Some(p.bitrate_bps / 1_000.0),
                Metric::Jitter => p.jitter.map(|j| j.as_secs_f64()),
                Metric::Loss => Some(p.lost as f64),
                Metric::Rtt => p.rtt.map(|r| r.as_secs_f64()),
            }?;
            Some((t, v))
        })
        .collect()
}

/// One verified shape criterion.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Which figure/claim it validates.
    pub name: &'static str,
    /// What the paper reports.
    pub expectation: &'static str,
    /// What this run measured.
    pub measured: String,
    /// Whether the expectation held.
    pub pass: bool,
}

/// The p-th percentile of a figure metric's window values.
fn percentile(result: &ExperimentResult, metric: Metric, p: f64) -> Option<f64> {
    let mut vals: Vec<f64> = metric_points(result, metric).into_iter().map(|(_, v)| v).collect();
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
    let idx = ((vals.len() as f64 - 1.0) * p).round() as usize;
    Some(vals[idx])
}

fn mean_over(result: &ExperimentResult, metric: Metric, from_s: f64, to_s: f64) -> Option<f64> {
    let pts = metric_points(result, metric);
    let vals: Vec<f64> =
        pts.iter().filter(|(t, _)| *t >= from_s && *t < to_s).map(|(_, v)| *v).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Evaluates every shape criterion against a full-length (120 s) run.
pub fn shape_checks(run: &PaperRun) -> Vec<ShapeCheck> {
    let mut checks = Vec::new();
    let push = |checks: &mut Vec<ShapeCheck>,
                name: &'static str,
                expectation: &'static str,
                measured: String,
                pass: bool| {
        checks.push(ShapeCheck { name, expectation, measured, pass });
    };

    // Fig. 1: both paths deliver ~72 kbps on average; UMTS fluctuates more.
    let u = &run.voip.umts;
    let e = &run.voip.ethernet;
    let u_rate = u.summary.mean_bitrate_bps / 1000.0;
    let e_rate = e.summary.mean_bitrate_bps / 1000.0;
    push(
        &mut checks,
        "fig1.mean-bitrate",
        "both paths average ≈72 kbps",
        format!("umts {u_rate:.1} kbps, eth {e_rate:.1} kbps"),
        (u_rate - 72.0).abs() < 6.0 && (e_rate - 72.0).abs() < 3.0,
    );
    let u_std = u.series.bitrate_std();
    let e_std = e.series.bitrate_std();
    push(
        &mut checks,
        "fig1.fluctuation",
        "UMTS bitrate fluctuates more than Ethernet",
        format!("std umts {:.1} kbps vs eth {:.1} kbps", u_std / 1000.0, e_std / 1000.0),
        u_std > e_std * 2.0,
    );

    // Text: VoIP loss is zero on both paths (allow a stray packet from BLER).
    push(
        &mut checks,
        "voip.loss-zero",
        "packet loss ≈ 0 on both paths",
        format!("umts {} lost, eth {} lost", u.summary.lost, e.summary.lost),
        u.summary.loss_rate < 0.01 && e.summary.lost == 0,
    );

    // Fig. 2: UMTS jitter higher, peaks in the tens of milliseconds; still
    // VoIP-usable (well under 100 ms).
    let uj = u.summary.mean_jitter.unwrap_or(Duration::ZERO);
    let ej = e.summary.mean_jitter.unwrap_or(Duration::ZERO);
    let uj_max = u.series.max_jitter().unwrap_or(Duration::ZERO);
    // A lone window straddling a radio stall can spike arbitrarily; the
    // *typical* envelope (p95) is what the paper's plot shows.
    let uj_p95 = percentile(u, Metric::Jitter, 0.95).unwrap_or(0.0);
    push(
        &mut checks,
        "fig2.jitter-ordering",
        "UMTS jitter well above Ethernet jitter",
        format!("mean umts {uj} vs eth {ej}"),
        uj > ej * 5 && !ej.is_zero(),
    );
    push(
        &mut checks,
        "fig2.jitter-magnitude",
        "UMTS jitter envelope at tens of ms, staying VoIP-usable",
        format!("max window jitter {uj_max}, p95 {:.1} ms", uj_p95 * 1000.0),
        uj_max >= Duration::from_millis(8) && uj_p95 <= 0.120,
    );

    // Fig. 3: UMTS RTT well above Ethernet; peaks several hundred ms.
    let ur = u.summary.mean_rtt.unwrap_or(Duration::ZERO);
    let er = e.summary.mean_rtt.unwrap_or(Duration::ZERO);
    let ur_max = u.series.max_rtt().unwrap_or(Duration::ZERO);
    let ur_p95 = percentile(u, Metric::Rtt, 0.95).unwrap_or(0.0);
    push(
        &mut checks,
        "fig3.rtt-ordering",
        "UMTS RTT mean far above Ethernet's",
        format!("mean umts {ur} vs eth {er}"),
        ur > er * 5 && er >= Duration::from_millis(20) && er <= Duration::from_millis(40),
    );
    push(
        &mut checks,
        "fig3.rtt-peaks",
        "UMTS RTT fluctuates up to several hundred ms",
        format!("max window rtt {ur_max}, p95 {:.0} ms", ur_p95 * 1000.0),
        ur_max >= Duration::from_millis(350) && ur_p95 <= 1.0,
    );

    // Fig. 4: Ethernet delivers the full 1 Mbps; UMTS saturates around
    // 400 kbps, with a lower (~150 kbps) first regime whose knee sits near
    // 50 s.
    let cu = &run.cbr.umts;
    let ce = &run.cbr.ethernet;
    let ce_rate = ce.summary.mean_bitrate_bps / 1000.0;
    push(
        &mut checks,
        "fig4.ethernet-full-rate",
        "Ethernet carries the offered ~1 Mbps",
        format!("eth {ce_rate:.0} kbps"),
        (ce_rate - 999.0).abs() < 30.0,
    );
    let early = mean_over(cu, Metric::Bitrate, 5.0, 45.0).unwrap_or(0.0);
    let late = mean_over(cu, Metric::Bitrate, 60.0, 115.0).unwrap_or(0.0);
    push(
        &mut checks,
        "fig4.two-regimes",
        "≈150 kbps for the first ~50 s, then more than doubled (≈400 kbps)",
        format!("early {early:.0} kbps, late {late:.0} kbps"),
        (100.0..=220.0).contains(&early) && (300.0..=520.0).contains(&late) && late > early * 1.8,
    );
    // Locate the knee: first window after which a 10 s trailing mean
    // exceeds 250 kbps.
    let knee = {
        let pts = metric_points(cu, Metric::Bitrate);
        let mut found = None;
        for (t, _) in &pts {
            if let Some(m) = mean_over(cu, Metric::Bitrate, *t, *t + 10.0) {
                if m > 250.0 {
                    found = Some(*t);
                    break;
                }
            }
        }
        found
    };
    push(
        &mut checks,
        "fig4.knee-position",
        "the regime change falls around t ≈ 50 s",
        format!("knee at {knee:?} s"),
        matches!(knee, Some(t) if (40.0..=60.0).contains(&t)),
    );

    // Fig. 5: saturated UMTS jitter exceeds 200 ms peaks; Ethernet tiny.
    let cuj_max = cu.series.max_jitter().unwrap_or(Duration::ZERO);
    let cej_max = ce.series.max_jitter().unwrap_or(Duration::ZERO);
    push(
        &mut checks,
        "fig5.saturated-jitter",
        "UMTS jitter reaches values > 200 ms; Ethernet stays tiny",
        format!("max umts {cuj_max} vs eth {cej_max}"),
        cuj_max > Duration::from_millis(200) && cej_max < Duration::from_millis(10),
    );

    // Fig. 6: heavy loss on UMTS (offered ≫ capacity), ≈0 on Ethernet.
    push(
        &mut checks,
        "fig6.loss",
        "UMTS loses most of the offered load; Ethernet ≈ none",
        format!(
            "umts loss {:.0}%, eth loss {:.2}%",
            cu.summary.loss_rate * 100.0,
            ce.summary.loss_rate * 100.0
        ),
        cu.summary.loss_rate > 0.4 && ce.summary.loss_rate < 0.005,
    );

    // Fig. 7: UMTS RTT inflates to seconds (up to ~3 s); Ethernet low.
    let cur_max = cu.summary.max_rtt.unwrap_or(Duration::ZERO);
    let cer = ce.summary.mean_rtt.unwrap_or(Duration::ZERO);
    push(
        &mut checks,
        "fig7.bufferbloat",
        "saturated UMTS RTT reaches seconds (≈3 s); Ethernet stays ~25 ms",
        format!("max umts rtt {cur_max}, mean eth rtt {cer}"),
        cur_max >= Duration::from_millis(1_500)
            && cur_max <= Duration::from_millis(7_000)
            && cer < Duration::from_millis(40),
    );

    checks
}

/// Formats a series as the rows the paper's figures plot.
pub fn render_series(result: &ExperimentResult, metric: Metric) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    let unit = match metric {
        Metric::Bitrate => "kbps",
        Metric::Jitter | Metric::Rtt => "s",
        Metric::Loss => "pkt/window",
    };
    let _ = writeln!(out, "# {} — {} [{unit}] vs time [s]", result.label, metric);
    for (t, v) in metric_points(result, metric) {
        let _ = writeln!(out, "{t:.1}\t{v:.6}");
    }
    out
}

/// A one-line summary row (used by the figures binary and EXPERIMENTS.md).
pub fn summary_row(result: &ExperimentResult) -> String {
    let s = &result.summary;
    format!(
        "{:<22} {:<22} rate={:>8.1} kbps loss={:>6.2}% jitter(mean)={:>9} rtt(mean)={:>9} rtt(max)={:>9}",
        result.label,
        result.path.to_string(),
        s.mean_bitrate_bps / 1000.0,
        s.loss_rate * 100.0,
        s.mean_jitter.map_or_else(|| "-".into(), |d| d.to_string()),
        s.mean_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
        s.max_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
    )
}

/// Convenience: the flow-relative instant `secs` after the start.
pub fn at_seconds(result: &ExperimentResult, secs: u64) -> Instant {
    result.flow_start + Duration::from_secs(secs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_table_is_complete() {
        assert_eq!(FIGURES.len(), 7);
        assert_eq!(FIGURES.iter().filter(|f| f.workload == Workload::VoipG711).count(), 3);
        assert_eq!(FIGURES.iter().filter(|f| f.workload == Workload::Cbr1Mbps).count(), 4);
        // Exactly one loss figure, as in the paper.
        assert_eq!(FIGURES.iter().filter(|f| f.metric == Metric::Loss).count(), 1);
    }

    #[test]
    fn paper_jobs_reproduce_run_paper_seed_scheme() {
        let jobs = paper_jobs(2008, None);
        assert_eq!(jobs[0].seed, 2008);
        assert_eq!(jobs[1].seed, 2008);
        assert_eq!(jobs[2].seed, 2008 ^ 0x5555);
        assert_eq!(jobs[3].seed, 2008 ^ 0x5555);
        assert_eq!(jobs[0].label(), "voip/UMTS-to-Ethernet");
        assert_eq!(jobs[3].label(), "cbr-1mbps/Ethernet-to-Ethernet");
        let seeds = campaign_seeds(2008, 3);
        assert_eq!(seeds, vec![2008, 2008 + 7919, 2008 + 2 * 7919]);
    }

    #[test]
    fn assemble_matches_serial_run_paper() {
        let short = Some(Duration::from_secs(2));
        // Only the wired jobs, to keep the test fast: a degenerate
        // campaign where both workloads run the Ethernet path.
        let mut jobs = paper_jobs(21, short);
        jobs[0].path = PathKind::EthernetToEthernet;
        jobs[2].path = PathKind::EthernetToEthernet;
        let results = jobs.map(|j| j.run().unwrap());
        let run = assemble_paper_run(results);
        let direct =
            run_workload(Workload::VoipG711, PathKind::EthernetToEthernet, 21, short).unwrap();
        assert_eq!(
            render_series(&run.voip.umts, Metric::Bitrate),
            render_series(&direct, Metric::Bitrate)
        );
        assert_eq!(run.cbr.ethernet.label, "cbr-1mbps");
    }

    #[test]
    fn metric_points_units() {
        let r = run_workload(
            Workload::VoipG711,
            PathKind::EthernetToEthernet,
            3,
            Some(Duration::from_secs(4)),
        )
        .unwrap();
        let pts = metric_points(&r, Metric::Bitrate);
        assert!(!pts.is_empty());
        // kbps near 72.
        let mean: f64 = pts.iter().map(|(_, v)| v).sum::<f64>() / pts.len() as f64;
        assert!((mean - 72.0).abs() < 8.0, "mean {mean}");
        // Time axis is flow-relative.
        assert!(pts[0].0 < 0.5);
        let rtt = metric_points(&r, Metric::Rtt);
        assert!(rtt.iter().all(|(_, v)| *v > 0.02 && *v < 0.04));
    }

    #[test]
    fn render_series_shape() {
        let r = run_workload(
            Workload::VoipG711,
            PathKind::EthernetToEthernet,
            4,
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        let text = render_series(&r, Metric::Bitrate);
        assert!(text.starts_with("# voip-g711-72kbps — bitrate [kbps]"));
        assert!(text.lines().count() >= 10);
        let row = summary_row(&r);
        assert!(row.contains("Ethernet-to-Ethernet"));
    }
}
