//! Chaos campaigns: the paper's VoIP flow under a storm of session faults.
//!
//! The headline scenario of the supervisor subsystem: the Section 3
//! two-node testbed runs the 72 kbps G.711 VoIP workload over the UMTS
//! path while a seeded [`FaultPlan`] attacks the session (LCP terminates,
//! modem hangs, operator detaches, ...). A
//! [`SessionSupervisor`](umtslab_supervisor::supervisor::SessionSupervisor)
//! keeps
//! re-establishing the session; the campaign reports how well it did
//! (availability metrics, lifecycle marker trail) and gives the caller a
//! checkpoint hook after every drop and recovery — `umtslab-verify` uses
//! it to prove that no recovery ever leaves stale routing state or a
//! cross-slice leak behind.

use umtslab_ditg::{Decoder, FlowSpec, FlowSummary};
use umtslab_net::trace::TraceKind;
use umtslab_net::wire::Ipv4Cidr;
use umtslab_planetlab::node::Node;
use umtslab_sim::time::{Duration, Instant};
use umtslab_supervisor::faults::{CampaignConfig, FaultEvent, FaultPlan};
use umtslab_supervisor::metrics::AvailabilityMetrics;
use umtslab_supervisor::supervisor::{SupervisorConfig, SupervisorState};
use umtslab_umts::attachment::SessionFault;

use crate::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};

/// Configuration of one chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed (drives the testbed, the fault schedule and the
    /// backoff jitter).
    pub seed: u64,
    /// Total simulated time.
    pub horizon: Duration,
    /// Fault-campaign parameters (window, mean gap, fault mix).
    pub campaign: CampaignConfig,
    /// Supervisor tuning.
    pub supervisor: SupervisorConfig,
}

impl ChaosConfig {
    /// The default campaign: six minutes of VoIP with a fault on average
    /// every 45 s, drawn from a mix that includes the two hardest cases
    /// (LCP terminate and modem hard-hang).
    pub fn paper(seed: u64) -> ChaosConfig {
        let horizon = Duration::from_secs(360);
        let campaign = CampaignConfig {
            start: Instant::from_secs(20),
            horizon: Instant::ZERO + horizon - Duration::from_secs(60),
            mean_gap: Duration::from_secs(45),
            mix: vec![
                SessionFault::PppTerminate,
                SessionFault::ModemHang,
                SessionFault::OperatorDetach,
                SessionFault::RrcRelease,
                SessionFault::BearerPreemption,
            ],
        };
        let supervisor = SupervisorConfig {
            destinations: vec![Ipv4Cidr::host(INRIA_ADDR)],
            ..SupervisorConfig::default()
        };
        ChaosConfig { seed, horizon, campaign, supervisor }
    }
}

/// What one campaign produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Availability accounting from the supervisor.
    pub availability: AvailabilityMetrics,
    /// The faults that were scheduled (all fired before the horizon).
    pub faults: Vec<FaultEvent>,
    /// The session lifecycle trail: `(micros, kind)` per marker event, in
    /// order. This is what the determinism gate hashes.
    pub lifecycle: Vec<(u64, String)>,
    /// Whether the session was up when the campaign ended.
    pub ended_up: bool,
    /// Whole-flow summary of the VoIP probe.
    pub summary: FlowSummary,
}

impl ChaosReport {
    /// Session recoveries (establishments after the first).
    pub fn recoveries(&self) -> u64 {
        self.availability.sessions_established.saturating_sub(1)
    }
}

/// Runs one chaos campaign. `checkpoint` fires on every session drop and
/// every recovery with the Napoli node, the current instant and a label
/// (`"drop-N"` / `"recovery-N"`), so callers can audit the node state at
/// exactly the moments the supervisor claims to have cleaned up.
pub fn run_chaos_campaign(
    cfg: &ChaosConfig,
    mut checkpoint: impl FnMut(&Node, Instant, &str),
) -> ChaosReport {
    let mut spec = FlowSpec::voip_g711();
    // The probe runs almost wall to wall; what is lost while the session
    // recovers shows up in the summary, not as a truncated flow.
    spec.duration = cfg.horizon - Duration::from_secs(30);
    let experiment = ExperimentConfig::paper(spec.clone(), PathKind::UmtsToEthernet, cfg.seed);
    let mut env = TwoNodeTestbed::build(&experiment);
    env.tb.node_mut(env.napoli).trace.set_enabled(true);

    let plan = FaultPlan::seeded(cfg.seed, &cfg.campaign);
    let faults = plan.events().to_vec();
    env.tb.attach_supervisor(env.napoli, env.umts_slice, cfg.supervisor.clone());
    env.tb.schedule_faults(env.napoli, plan);
    env.tb.start_supervisor(env.napoli);

    let flow_start = Instant::from_secs(15);
    let dport = spec.dport;
    let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, flow_start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);

    let horizon = Instant::ZERO + cfg.horizon;
    let mut seen_ups = 0u64;
    let mut seen_downs = 0u64;
    while env.tb.now() < horizon {
        env.tb.run_for(Duration::from_millis(100));
        let now = env.tb.now();
        let node = env.tb.node(env.napoli);
        let ups = node.trace.of_kind(TraceKind::SessionUp).count() as u64;
        let downs = node.trace.of_kind(TraceKind::SessionDown).count() as u64;
        while seen_downs < downs {
            seen_downs += 1;
            checkpoint(env.tb.node(env.napoli), now, &format!("drop-{seen_downs}"));
        }
        while seen_ups < ups {
            seen_ups += 1;
            checkpoint(env.tb.node(env.napoli), now, &format!("recovery-{seen_ups}"));
        }
    }

    let availability = env.tb.availability(env.napoli).expect("supervisor attached");
    let ended_up = env.tb.supervisor(env.napoli).is_some_and(|s| s.state() == SupervisorState::Up);
    let lifecycle = env
        .tb
        .node(env.napoli)
        .trace
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceKind::SessionUp | TraceKind::SessionDown | TraceKind::RedialScheduled
            )
        })
        .map(|e| (e.time.total_micros(), e.kind.to_string()))
        .collect();

    let (sent, rtts) = env.tb.sender_logs(tx);
    let recv = env.tb.receiver_records(rx);
    let summary = Decoder::with_window(experiment.window).summary(sent, recv, rtts);

    ChaosReport { availability, faults, lifecycle, ended_up, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_campaign_recovers_every_drop() {
        let cfg = ChaosConfig::paper(2026);
        let mut labels = Vec::new();
        let report = run_chaos_campaign(&cfg, |node, _now, label| {
            labels.push(label.to_string());
            assert!(node.audit().is_empty(), "stale state at {label}: {:?}", node.audit());
        });
        // The scheduled mix actually exercised several fault types,
        // including the two the acceptance criteria name.
        assert!(report.faults.len() >= 3, "campaign too small: {:?}", report.faults);
        assert!(report.availability.faults_injected >= 3);
        // Every drop was answered by a recovery and the run ends healthy.
        assert!(report.availability.session_drops >= 1, "no drop ever happened");
        assert!(report.ended_up, "campaign must end with the session up");
        assert_eq!(
            report.availability.sessions_established,
            report.availability.session_drops + 1,
            "every drop must be re-established exactly once: {:?}",
            report.availability
        );
        assert!(report.availability.redials >= report.availability.session_drops);
        // The probe still delivered the bulk of the VoIP flow (wired
        // fallback plus recovery keep the blackouts short).
        assert!(report.summary.loss_rate < 0.5, "loss {}", report.summary.loss_rate);
        assert!(!labels.is_empty());
        let m = report.availability;
        assert!(m.uptime_fraction().unwrap() > 0.5, "uptime {:?}", m.uptime_fraction());
        assert!(m.mttr().is_some() && m.mtbf().is_some());
    }

    #[test]
    fn same_seed_campaigns_are_bit_identical() {
        let cfg = ChaosConfig::paper(7);
        let a = run_chaos_campaign(&cfg, |_, _, _| {});
        let b = run_chaos_campaign(&cfg, |_, _, _| {});
        assert_eq!(a.availability, b.availability);
        assert_eq!(a.lifecycle, b.lifecycle);
        assert_eq!(a.faults, b.faults);
    }
}
