//! The experiment runner: the paper's two-path measurement methodology.
//!
//! Section 3 of the paper compares a *UMTS-to-Ethernet* path (a 3G-equipped
//! node in Napoli probing a wired node at INRIA) against the
//! *Ethernet-to-Ethernet* path between the same two nodes. This module
//! builds that two-node testbed, brings the UMTS connection up through the
//! `umts` vsys command exactly as a slice user would, runs a D-ITG flow,
//! and decodes the logs into the paper's windowed QoS series.

use umtslab_ditg::{Decoder, FlowSpec, FlowSummary, TimeSeries};
use umtslab_net::fault::FaultConfig;
use umtslab_net::link::{JitterModel, LinkConfig};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::slice::SliceId;
use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest};
use umtslab_sim::time::{Duration, Instant};
use umtslab_supervisor::faults::{CampaignConfig, FaultPlan};
use umtslab_supervisor::metrics::AvailabilityMetrics;
use umtslab_supervisor::supervisor::SupervisorConfig;
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::testbed::{AgentId, NodeId, Testbed, TestbedDrops, TestbedMetrics};

/// Which end-to-end path carries the measurement flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Sender on the 3G uplink, receiver on the wired network.
    UmtsToEthernet,
    /// Both ends on the wired network.
    EthernetToEthernet,
}

impl core::fmt::Display for PathKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PathKind::UmtsToEthernet => write!(f, "UMTS-to-Ethernet"),
            PathKind::EthernetToEthernet => write!(f, "Ethernet-to-Ethernet"),
        }
    }
}

/// Which of the two testbed nodes a pack-declared slice lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The UNINA node (3G-capable sender side).
    Napoli,
    /// The INRIA node (wired receiver side).
    Inria,
}

impl core::fmt::Display for NodeRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NodeRole::Napoli => write!(f, "napoli"),
            NodeRole::Inria => write!(f, "inria"),
        }
    }
}

/// The access-link half of the topology: each node's share of the wired
/// research path (GÉANT in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessLink {
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay per side.
    pub delay: Duration,
    /// Upper bound of the uniform per-packet jitter.
    pub jitter: Duration,
}

impl AccessLink {
    /// The paper's GÉANT share: 100 Mbps, ~6 ms one way,
    /// sub-millisecond jitter.
    pub fn paper() -> AccessLink {
        AccessLink {
            rate_bps: 100_000_000,
            delay: Duration::from_millis(6),
            jitter: Duration::from_micros(400),
        }
    }
}

/// A slice that exists on the testbed beyond the two the measurement
/// needs — declarative packs use these to express ACL scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtraSlice {
    /// Slice name.
    pub name: String,
    /// Which node hosts it.
    pub node: NodeRole,
    /// Whether it is admitted to the `umts` vsys ACL.
    pub umts_access: bool,
}

/// The slices of a run and their `umts` vsys ACL grants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicePlan {
    /// The Napoli-side slice that owns the measurement flow.
    pub sender: String,
    /// Whether the sender slice is granted `umts` vsys access.
    pub sender_umts_access: bool,
    /// The INRIA-side slice running the receiver.
    pub probe: String,
    /// Any further slices to create (ACL scenarios).
    pub extra: Vec<ExtraSlice>,
}

impl SlicePlan {
    /// The paper's slices: `unina_umts` (granted) and `unina_probe`.
    pub fn paper() -> SlicePlan {
        SlicePlan {
            sender: "unina_umts".to_string(),
            sender_umts_access: true,
            probe: "unina_probe".to_string(),
            extra: Vec::new(),
        }
    }
}

/// Which flow model generates the measurement traffic.
#[derive(Debug, Clone, Default)]
pub enum FlowModel {
    /// Open-loop D-ITG probe flow described by [`ExperimentConfig::spec`]
    /// (the original workload; ignores congestion entirely).
    #[default]
    OpenLoop,
    /// Closed-loop TCP-ish congestion-controlled flow
    /// ([`umtslab_traffic::TcpFlow`]). The spec's label still names the
    /// flow; its IDT/PS processes are unused.
    Tcp(umtslab_traffic::TcpConfig),
    /// Deterministic rate-adaptive video-like sender
    /// ([`umtslab_traffic::AdaptiveSender`]).
    Adaptive(umtslab_traffic::AdaptiveConfig),
}

/// Configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The traffic workload.
    pub spec: FlowSpec,
    /// The flow model animating the workload (open-loop by default).
    pub flow_model: FlowModel,
    /// A recorded capacity/loss trace replayed onto both nodes' wired
    /// access links for the duration of the run, if any.
    pub access_trace: Option<umtslab_traffic::Trace>,
    /// Which path to measure.
    pub path: PathKind,
    /// Master seed (each repetition should use a distinct seed).
    pub seed: u64,
    /// Operator serving the 3G card.
    pub operator: OperatorProfile,
    /// The 3G card model.
    pub device: DeviceProfile,
    /// Subscriber credentials.
    pub credentials: Option<Credentials>,
    /// Decoding window (the paper uses 200 ms).
    pub window: Duration,
    /// Pause between connection establishment and the first packet.
    pub settle: Duration,
    /// Extra time after the flow ends to let stragglers drain.
    pub drain: Duration,
    /// Fault process applied to both access links (loss, corruption,
    /// reordering). The paper's GÉANT path is clean, so this defaults to
    /// [`FaultConfig::none`]; the bursty-UMTS campaign swaps in
    /// [`FaultConfig::bursty_umts`] to make the path fade like a 3G radio.
    pub access_fault: FaultConfig,
    /// Wired access-link parameters (rate, delay, jitter) of both nodes.
    pub access: AccessLink,
    /// The slices to create and their `umts` ACL grants.
    pub slices: SlicePlan,
}

impl ExperimentConfig {
    /// A config matching the paper's setup for the given workload/path.
    pub fn paper(spec: FlowSpec, path: PathKind, seed: u64) -> ExperimentConfig {
        ExperimentConfig {
            spec,
            flow_model: FlowModel::OpenLoop,
            access_trace: None,
            path,
            seed,
            operator: OperatorProfile::commercial_italy(),
            device: DeviceProfile::option_globetrotter(),
            credentials: Some(Credentials::new("web", "web")),
            window: Duration::from_millis(200),
            settle: Duration::from_secs(1),
            drain: Duration::from_secs(20),
            access_fault: FaultConfig::none(),
            access: AccessLink::paper(),
            slices: SlicePlan::paper(),
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The measured path.
    pub path: PathKind,
    /// Workload label.
    pub label: String,
    /// When the flow started (series origin).
    pub flow_start: Instant,
    /// The windowed QoS series.
    pub series: TimeSeries,
    /// Whole-flow summary.
    pub summary: FlowSummary,
    /// Time from `umts start` to connected (UMTS path only).
    pub connect_time: Option<Duration>,
    /// Testbed-level drop counters.
    pub drops: TestbedDrops,
    /// Scheduler events processed (a cost metric).
    pub events: u64,
    /// Full cross-layer counter snapshot taken at the end of the run.
    pub metrics: TestbedMetrics,
    /// Congestion-control counters, when the flow model was
    /// [`FlowModel::Tcp`].
    pub tcp: Option<umtslab_traffic::TcpStats>,
    /// RRC per-state dwell times of the UMTS attachment, when one exists.
    pub rrc_dwell: Option<umtslab_umts::RrcDwell>,
}

/// Failure modes of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The UMTS connection did not come up.
    UmtsConnectFailed(String),
    /// The configuration asks for something the testbed cannot express.
    Unsupported(String),
}

impl core::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExperimentError::UmtsConnectFailed(why) => {
                write!(f, "UMTS connection failed: {why}")
            }
            ExperimentError::Unsupported(why) => write!(f, "unsupported configuration: {why}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// The two-node testbed of the paper's Section 3, before any flow runs.
pub struct TwoNodeTestbed {
    /// The underlying testbed.
    pub tb: Testbed,
    /// The UNINA node (3G-capable).
    pub napoli: NodeId,
    /// The INRIA node (wired only).
    pub inria: NodeId,
    /// The experiment slice on the Napoli node.
    pub umts_slice: SliceId,
    /// The receiving slice on the INRIA node.
    pub probe_slice: SliceId,
}

/// The INRIA node's wired address.
pub const INRIA_ADDR: Ipv4Address = Ipv4Address([138, 96, 20, 10]);
/// The Napoli node's wired address.
pub const NAPOLI_ADDR: Ipv4Address = Ipv4Address([143, 225, 229, 5]);

impl TwoNodeTestbed {
    /// Builds the Napoli + INRIA pair. The access links model each node's
    /// share of the wired research path — by default the paper's GÉANT
    /// share ([`AccessLink::paper`]) — and the slices follow the config's
    /// [`SlicePlan`].
    pub fn build(cfg: &ExperimentConfig) -> TwoNodeTestbed {
        let mut tb = Testbed::new(cfg.seed);
        let mut access = LinkConfig::wired(cfg.access.rate_bps, cfg.access.delay);
        if !cfg.access.jitter.is_zero() {
            access.jitter = JitterModel::Uniform { max: cfg.access.jitter };
        }
        access.fault = cfg.access_fault.clone();
        let napoli = tb.add_node(
            "planetlab1.unina.it",
            NAPOLI_ADDR,
            Ipv4Cidr::new(NAPOLI_ADDR, 24),
            Ipv4Address([143, 225, 229, 1]),
            access.clone(),
        );
        let inria = tb.add_node(
            "planetlab1.inria.fr",
            INRIA_ADDR,
            Ipv4Cidr::new(INRIA_ADDR, 24),
            Ipv4Address([138, 96, 20, 1]),
            access,
        );
        if cfg.path == PathKind::UmtsToEthernet {
            tb.attach_umts(
                napoli,
                cfg.operator.clone(),
                cfg.device.clone(),
                cfg.credentials.clone(),
            );
        }
        let umts_slice = tb.node_mut(napoli).slices.create(&cfg.slices.sender);
        if cfg.slices.sender_umts_access {
            tb.node_mut(napoli).grant_umts_access(umts_slice);
        }
        let probe_slice = tb.node_mut(inria).slices.create(&cfg.slices.probe);
        for extra in &cfg.slices.extra {
            let node = match extra.node {
                NodeRole::Napoli => napoli,
                NodeRole::Inria => inria,
            };
            let id = tb.node_mut(node).slices.create(&extra.name);
            if extra.umts_access {
                tb.node_mut(node).grant_umts_access(id);
            }
        }
        if let Some(trace) = &cfg.access_trace {
            let schedule = std::sync::Arc::new(trace.to_schedule());
            tb.set_access_schedule(napoli, schedule.clone());
            tb.set_access_schedule(inria, schedule);
        }
        TwoNodeTestbed { tb, napoli, inria, umts_slice, probe_slice }
    }

    /// Adds the measurement flow of `cfg` (whatever its
    /// [`FlowModel`]) from Napoli toward INRIA, returning the sender,
    /// the flow duration and the destination port to listen on.
    pub fn add_measurement_flow(
        &mut self,
        cfg: &ExperimentConfig,
        flow_start: Instant,
    ) -> (AgentId, Duration, u16) {
        match &cfg.flow_model {
            FlowModel::OpenLoop => {
                let spec = cfg.spec.clone();
                let (duration, dport) = (spec.duration, spec.dport);
                let tx =
                    self.tb.add_sender(self.napoli, self.umts_slice, spec, INRIA_ADDR, flow_start);
                (tx, duration, dport)
            }
            FlowModel::Tcp(tcp) => {
                let (duration, dport) = (tcp.duration, tcp.dport);
                let tx = self.tb.add_tcp_sender(
                    self.napoli,
                    self.umts_slice,
                    tcp.clone(),
                    INRIA_ADDR,
                    flow_start,
                );
                (tx, duration, dport)
            }
            FlowModel::Adaptive(video) => {
                let (duration, dport) = (video.duration, video.dport);
                let tx = self.tb.add_adaptive_sender(
                    self.napoli,
                    self.umts_slice,
                    video.clone(),
                    INRIA_ADDR,
                    flow_start,
                );
                (tx, duration, dport)
            }
        }
    }

    /// Issues `umts start` and runs until connected (or failure).
    pub fn umts_up(&mut self, horizon: Duration) -> Result<Duration, ExperimentError> {
        let started = self.tb.now();
        self.tb
            .node_mut(self.napoli)
            .vsys_submit(self.umts_slice, UmtsRequest::Start)
            .map_err(|e| ExperimentError::UmtsConnectFailed(format!("vsys: {e:?}")))?;
        let deadline = started + horizon;
        loop {
            self.tb.run_for(Duration::from_millis(100));
            let status = self.tb.node(self.napoli).umts_status();
            match status.phase {
                UmtsPhase::Up => return Ok(self.tb.now().duration_since(started)),
                UmtsPhase::Down => {
                    if let Some(err) = self.tb.node(self.napoli).last_dial_error() {
                        return Err(ExperimentError::UmtsConnectFailed(format!("{err:?}")));
                    }
                }
                _ => {}
            }
            if self.tb.now() >= deadline {
                return Err(ExperimentError::UmtsConnectFailed("timeout".to_string()));
            }
        }
    }

    /// Registers the INRIA node as a UMTS destination.
    pub fn register_destination(&mut self) {
        self.tb
            .node_mut(self.napoli)
            .vsys_submit(self.umts_slice, UmtsRequest::AddDestination(Ipv4Cidr::host(INRIA_ADDR)))
            .expect("granted slice");
        self.tb.run_for(Duration::from_millis(10));
    }
}

/// Runs one complete experiment.
pub fn run_experiment(cfg: ExperimentConfig) -> Result<ExperimentResult, ExperimentError> {
    let mut env = TwoNodeTestbed::build(&cfg);
    let mut connect_time = None;

    if cfg.path == PathKind::UmtsToEthernet {
        let dialed = env.umts_up(Duration::from_secs(120))?;
        connect_time = Some(dialed);
        env.register_destination();
    }

    let flow_start = env.tb.now() + cfg.settle;
    let (tx, duration, dport) = env.add_measurement_flow(&cfg, flow_start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);

    env.tb.run_until(flow_start + duration + cfg.drain);

    Ok(collect_result(&env.tb, &cfg, tx, rx, flow_start, duration, connect_time))
}

/// An [`ExperimentResult`] measured under a session-fault campaign, with
/// the supervisor's availability accounting alongside.
#[derive(Debug, Clone)]
pub struct SupervisedResult {
    /// The flow measurement (same shape as an unsupervised run).
    pub result: ExperimentResult,
    /// Session availability (uptime, drops, redials, MTBF/MTTR).
    pub availability: AvailabilityMetrics,
}

/// Runs one experiment with a [`SessionSupervisor`] keeping the UMTS
/// session alive while a seeded fault campaign attacks it — the
/// declarative-pack (`umtslab-pack`) counterpart of
/// [`crate::chaos::run_chaos_campaign`], measuring an arbitrary workload
/// instead of the fixed chaos VoIP probe.
///
/// The fault schedule is [`FaultPlan::seeded`] from the experiment seed,
/// so supervised runs are as replayable as plain ones.
///
/// [`SessionSupervisor`]: umtslab_supervisor::supervisor::SessionSupervisor
pub fn run_supervised_experiment(
    cfg: ExperimentConfig,
    campaign: &CampaignConfig,
) -> Result<SupervisedResult, ExperimentError> {
    if cfg.path != PathKind::UmtsToEthernet {
        return Err(ExperimentError::Unsupported(
            "a fault campaign needs a session to attack: supervised runs require the UMTS path"
                .to_string(),
        ));
    }
    let mut env = TwoNodeTestbed::build(&cfg);
    let supervisor = SupervisorConfig {
        destinations: vec![Ipv4Cidr::host(INRIA_ADDR)],
        ..SupervisorConfig::default()
    };
    env.tb.attach_supervisor(env.napoli, env.umts_slice, supervisor);
    env.tb.schedule_faults(env.napoli, FaultPlan::seeded(cfg.seed, campaign));
    env.tb.start_supervisor(env.napoli);

    // The supervisor dials and installs the destination route; wait for
    // the first establishment as `umts_up` would.
    let started = env.tb.now();
    let deadline = started + Duration::from_secs(120);
    loop {
        env.tb.run_for(Duration::from_millis(100));
        if env.tb.node(env.napoli).umts_status().phase == UmtsPhase::Up {
            break;
        }
        if env.tb.now() >= deadline {
            return Err(ExperimentError::UmtsConnectFailed(
                "timeout under supervision".to_string(),
            ));
        }
    }
    let connect_time = Some(env.tb.now().duration_since(started));

    let flow_start = env.tb.now() + cfg.settle;
    let (tx, duration, dport) = env.add_measurement_flow(&cfg, flow_start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);
    env.tb.run_until(flow_start + duration + cfg.drain);

    let availability = env.tb.availability(env.napoli).expect("supervisor attached");
    let result = collect_result(&env.tb, &cfg, tx, rx, flow_start, duration, connect_time);
    Ok(SupervisedResult { result, availability })
}

/// Decodes logs into a result (shared by the ablation benches, which
/// drive the testbed directly).
pub fn collect_result(
    tb: &Testbed,
    cfg: &ExperimentConfig,
    tx: AgentId,
    rx: AgentId,
    flow_start: Instant,
    duration: Duration,
    connect_time: Option<Duration>,
) -> ExperimentResult {
    let (sent, rtts) = tb.sender_logs(tx);
    let recv = tb.receiver_records(rx);
    let decoder = Decoder::with_window(cfg.window);
    let series = decoder.series(flow_start, duration, sent, recv, rtts);
    let summary = decoder.summary(sent, recv, rtts);
    ExperimentResult {
        path: cfg.path,
        label: cfg.spec.label.clone(),
        flow_start,
        series,
        summary,
        connect_time,
        drops: tb.drops(),
        events: tb.events_processed(),
        metrics: tb.metrics(),
        tcp: tb.tcp_stats(tx),
        rrc_dwell: tb.rrc_dwell_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_path_voip_is_clean() {
        let mut spec = FlowSpec::voip_g711();
        spec.duration = Duration::from_secs(10); // keep the test quick
        let cfg = ExperimentConfig::paper(spec, PathKind::EthernetToEthernet, 11);
        let r = run_experiment(cfg).unwrap();
        assert_eq!(r.summary.lost, 0);
        assert!((r.summary.mean_bitrate_bps - 72_000.0).abs() < 2_000.0);
        let rtt = r.summary.mean_rtt.unwrap();
        assert!(rtt >= Duration::from_millis(23) && rtt <= Duration::from_millis(32), "rtt {rtt}");
        assert!(r.connect_time.is_none());
    }

    #[test]
    fn umts_path_voip_connects_and_flows() {
        let mut spec = FlowSpec::voip_g711();
        spec.duration = Duration::from_secs(10);
        let cfg = ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, 12);
        let r = run_experiment(cfg).unwrap();
        let connect = r.connect_time.expect("umts path dials");
        assert!(
            connect >= Duration::from_secs(4) && connect <= Duration::from_secs(30),
            "connect {connect}"
        );
        // VoIP fits comfortably in the initial DCH grant: (almost) no loss.
        assert!(r.summary.loss_rate < 0.02, "loss {}", r.summary.loss_rate);
        assert!(
            (r.summary.mean_bitrate_bps - 72_000.0).abs() < 4_000.0,
            "bitrate {}",
            r.summary.mean_bitrate_bps
        );
        // RTT well above the wired path.
        assert!(r.summary.mean_rtt.unwrap() > Duration::from_millis(150));
    }

    #[test]
    fn umts_saturation_caps_throughput() {
        let mut spec = FlowSpec::cbr_1mbps();
        spec.duration = Duration::from_secs(20);
        let cfg = ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, 13);
        let r = run_experiment(cfg).unwrap();
        // Offered ~1 Mbps, initial grant ~160 kbps: heavy loss, capped rate.
        assert!(r.summary.loss_rate > 0.5, "loss {}", r.summary.loss_rate);
        assert!(r.summary.mean_bitrate_bps < 300_000.0, "bitrate {}", r.summary.mean_bitrate_bps);
        // Bufferbloat: max RTT beyond a second.
        assert!(r.summary.max_rtt.unwrap() > Duration::from_secs(1));
    }

    #[test]
    fn series_has_expected_window_count() {
        let mut spec = FlowSpec::voip_g711();
        spec.duration = Duration::from_secs(4);
        let cfg = ExperimentConfig::paper(spec, PathKind::EthernetToEthernet, 14);
        let r = run_experiment(cfg).unwrap();
        // 4 s / 200 ms = 20 windows (may extend by one for stragglers).
        assert!(r.series.points.len() >= 20 && r.series.points.len() <= 22);
    }
}
