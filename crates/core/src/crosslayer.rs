//! The INRIA cross-layer experiment: RRC switching policy versus TCP.
//!
//! The paper's INRIA testbed studied how the operator's channel-switching
//! policy (when to demote DCH → FACH → Idle) interacts with TCP: every
//! demotion taken during a TCP stall costs a promotion delay on the next
//! burst, and every promotion stall deepens TCP's own backoff — a
//! cross-layer feedback loop between the radio resource controller and
//! the transport. This module reproduces that experiment in the
//! simulator: one [`TcpFlow`] on the UMTS uplink per
//! [`SwitchingPolicy`], the flow's uplink backlog feeding
//! `RrcController::on_traffic` through the attachment's normal enqueue
//! path, reported as goodput plus per-state dwell times.
//!
//! [`TcpFlow`]: umtslab_traffic::TcpFlow

use umtslab_ditg::FlowSpec;
use umtslab_sim::time::Duration;
use umtslab_traffic::{PolicyReport, SwitchingPolicy, TcpConfig, Trace};

use crate::experiment::{
    run_experiment, ExperimentConfig, ExperimentError, ExperimentResult, FlowModel, PathKind,
};

/// Configuration of one policy × seed cell of the experiment grid.
#[derive(Debug, Clone)]
pub struct CrosslayerConfig {
    /// The FACH/DCH switching policy under test.
    pub policy: SwitchingPolicy,
    /// Master seed of the run.
    pub seed: u64,
    /// The TCP flow to drive through the uplink.
    pub tcp: TcpConfig,
    /// Optional recorded capacity/loss trace replayed on the wired
    /// access links while the flow runs.
    pub access_trace: Option<Trace>,
}

impl CrosslayerConfig {
    /// The default experiment cell: a 30 s TCP bulk upload.
    pub fn new(policy: SwitchingPolicy, seed: u64) -> CrosslayerConfig {
        CrosslayerConfig {
            policy,
            seed,
            tcp: TcpConfig { duration: Duration::from_secs(30), ..TcpConfig::default() },
            access_trace: None,
        }
    }
}

/// Runs one cell of the switching-policy experiment and reduces it to
/// the report row the runner prints.
pub fn run_switching_policy(
    cfg: &CrosslayerConfig,
) -> Result<(PolicyReport, ExperimentResult), ExperimentError> {
    let spec = FlowSpec { label: format!("tcp-{}", cfg.policy.name()), ..FlowSpec::cbr_1mbps() };
    let mut exp = ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, cfg.seed);
    exp.flow_model = FlowModel::Tcp(cfg.tcp.clone());
    exp.access_trace = cfg.access_trace.clone();
    exp.operator.rrc = cfg.policy.rrc_config();
    let result = run_experiment(exp)?;
    let tcp = result.tcp.expect("flow model was Tcp");
    let dwell = result.rrc_dwell.unwrap_or_default();
    let horizon = cfg.tcp.duration;
    let goodput_bps =
        tcp.delivered_segments.saturating_mul(cfg.tcp.mss as u64).saturating_mul(8_000_000)
            / horizon.total_micros().max(1);
    let report = PolicyReport {
        policy: cfg.policy,
        seed: cfg.seed,
        goodput_bps,
        delivered_segments: tcp.delivered_segments,
        retransmits: tcp.retransmits,
        timeouts: tcp.timeouts,
        max_cwnd_bytes: tcp.max_cwnd_bytes,
        rrc_transitions: result.metrics.rrc_transitions,
        dwell,
    };
    Ok((report, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: SwitchingPolicy, seed: u64) -> CrosslayerConfig {
        let mut cfg = CrosslayerConfig::new(policy, seed);
        cfg.tcp.duration = Duration::from_secs(12);
        cfg
    }

    #[test]
    fn tcp_over_umts_delivers_and_reports() {
        let (report, result) = run_switching_policy(&quick(SwitchingPolicy::Operator, 42)).unwrap();
        assert!(report.delivered_segments > 20, "report: {report:?}");
        assert!(report.goodput_bps > 10_000, "goodput {}", report.goodput_bps);
        // The uplink grant caps goodput well below the wired rate.
        assert!(report.goodput_bps < 1_000_000);
        assert!(result.connect_time.is_some());
        // The dwell clock covers dial + settle + flow + drain.
        let d = report.dwell;
        let total = d.idle + d.fach + d.dch + d.dch_upgraded;
        assert!(total >= Duration::from_secs(12), "dwell total {total}");
        assert!(d.idle_promotions >= 1);
    }

    #[test]
    fn policy_changes_the_dwell_profile() {
        let (aggressive, _) = run_switching_policy(&quick(SwitchingPolicy::Aggressive, 7)).unwrap();
        let (always_on, _) = run_switching_policy(&quick(SwitchingPolicy::AlwaysOn, 7)).unwrap();
        // The always-on policy never demotes during the run; the
        // aggressive one demotes in the drain tail at the latest.
        assert!(aggressive.dwell.fach + aggressive.dwell.idle > always_on.dwell.fach,);
        assert!(always_on.delivered_segments >= aggressive.delivered_segments);
    }

    #[test]
    fn cells_are_deterministic() {
        let run = || run_switching_policy(&quick(SwitchingPolicy::Operator, 9)).unwrap().0;
        assert_eq!(run(), run());
    }
}
