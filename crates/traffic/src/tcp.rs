//! A TCP-ish congestion-controlled bulk flow.
//!
//! [`TcpFlow`] is a closed-loop sender speaking the D-ITG probe wire
//! format: every segment carries the 16-byte header (seq, flow id, tx
//! time) and the standard echoing [`umtslab_ditg::TrafficReceiver`] acts
//! as the ACK generator — an echo of segment `s` acknowledges `s`. On
//! top of that acknowledgement stream the flow runs the classic loss
//! recovery ladder:
//!
//! * **slow start** — the congestion window grows one MSS per newly
//!   acknowledged segment until it reaches `ssthresh`;
//! * **congestion avoidance** — above `ssthresh` it grows
//!   `MSS × MSS / cwnd` per ACK (about one MSS per RTT);
//! * **fast retransmit** — the third duplicate ACK retransmits the
//!   oldest hole and halves the window;
//! * **retransmission timeout** — an RTO collapses the window to one
//!   MSS and doubles the timer (Karn's rule: retransmitted segments
//!   never produce RTT samples, and the backoff persists until an
//!   un-retransmitted segment is acknowledged).
//!
//! All state is integer: byte counts, segment numbers and
//! [`Duration`]/[`Instant`] newtypes. The RTT estimator is the standard
//! Jacobson/Karels arithmetic (`srtt ← 7/8·srtt + 1/8·sample`,
//! `rttvar ← 3/4·rttvar + 1/4·|srtt − sample|`) computed with the
//! newtypes' integer division — no float ever enters the flow state.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use umtslab_ditg::agent::{encode_header, parse_header, RttRecord, SentRecord, HEADER_LEN};
use umtslab_net::bytes::BufferPool;
use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::time::{Duration, Instant};

/// Tuning knobs of a [`TcpFlow`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Segment payload size in bytes (including the probe header).
    pub mss: usize,
    /// Initial congestion window, in segments.
    pub initial_window: u64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: u64,
    /// How long the sender keeps offering new data.
    pub duration: Duration,
    /// Lower clamp of the retransmission timeout.
    pub min_rto: Duration,
    /// Upper clamp of the retransmission timeout.
    pub max_rto: Duration,
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1_024,
            initial_window: 2,
            initial_ssthresh: 64,
            duration: Duration::from_secs(60),
            min_rto: Duration::from_millis(200),
            max_rto: Duration::from_secs(60),
            sport: 9_000,
            dport: 9_001,
        }
    }
}

/// Aggregate counters of one finished (or running) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpStats {
    /// Segments transmitted, including retransmissions.
    pub transmissions: u64,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmits: u64,
    /// Fast-retransmit events (triple duplicate ACK).
    pub fast_retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Highest congestion window reached, in bytes.
    pub max_cwnd_bytes: u64,
    /// Cumulatively acknowledged segments.
    pub delivered_segments: u64,
}

/// The closed-loop congestion-controlled sender.
#[derive(Debug)]
pub struct TcpFlow {
    config: TcpConfig,
    flow_id: u32,
    src: Endpoint,
    dst: Endpoint,
    start: Instant,
    ends: Instant,
    /// Congestion window in bytes.
    cwnd: u64,
    /// Slow-start threshold in bytes.
    ssthresh: u64,
    /// Next new segment number to transmit.
    next_seq: u32,
    /// All segments below this are cumulatively acknowledged.
    cum_ack: u32,
    /// Acknowledged segments above `cum_ack` (selective knowledge from
    /// out-of-order echoes). A `BTreeSet`, not a hash set: its iteration
    /// order feeds hole detection and must be deterministic.
    sacked: BTreeSet<u32>,
    /// Duplicate-ACK counter for the current hole.
    dup_acks: u32,
    /// Fast-recovery high-water mark: holes below it retransmit at most
    /// once per recovery episode.
    recover: u32,
    /// Transmit time and retransmission flag per in-flight segment
    /// (Karn: retransmitted segments yield no RTT sample).
    sent_at: BTreeMap<u32, (Instant, bool)>,
    /// Segments queued for retransmission ahead of new data.
    rtx_queue: VecDeque<u32>,
    /// Smoothed RTT, once a sample exists.
    srtt: Option<Duration>,
    /// RTT variance estimate.
    rttvar: Duration,
    /// Current retransmission timeout (with backoff applied).
    rto: Duration,
    /// Exponential RTO backoff multiplier (1 = no backoff).
    backoff: u32,
    /// When the pending RTO fires (armed while data is in flight).
    timer: Option<Instant>,
    stats: TcpStats,
    sent: Vec<SentRecord>,
    rtts: Vec<RttRecord>,
}

impl TcpFlow {
    /// Creates a flow from `src_addr` to `dst_addr` starting at `start`.
    pub fn new(
        config: TcpConfig,
        flow_id: u32,
        src_addr: Ipv4Address,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> TcpFlow {
        let mss = config.mss as u64;
        let cwnd = config.initial_window * mss;
        let ssthresh = config.initial_ssthresh * mss;
        let ends = start + config.duration;
        let src = Endpoint::new(src_addr, config.sport);
        let dst = Endpoint::new(dst_addr, config.dport);
        TcpFlow {
            config,
            flow_id,
            src,
            dst,
            start,
            ends,
            cwnd,
            ssthresh,
            next_seq: 0,
            cum_ack: 0,
            sacked: BTreeSet::new(),
            dup_acks: 0,
            recover: 0,
            sent_at: BTreeMap::new(),
            rtx_queue: VecDeque::new(),
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            backoff: 1,
            timer: None,
            stats: TcpStats { max_cwnd_bytes: cwnd, ..TcpStats::default() },
            sent: Vec::new(),
            rtts: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TcpConfig {
        &self.config
    }

    /// Flow start time.
    pub fn start_time(&self) -> Instant {
        self.start
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }

    /// Current smoothed RTT estimate, once one exists.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// The send log (one record per transmission, retransmits included).
    pub fn sent(&self) -> &[SentRecord] {
        &self.sent
    }

    /// The RTT log (Karn-filtered samples).
    pub fn rtts(&self) -> &[RttRecord] {
        &self.rtts
    }

    /// Bytes currently in flight (transmitted, not yet acknowledged).
    pub fn flight_bytes(&self) -> u64 {
        self.sent_at.len() as u64 * self.config.mss as u64
    }

    /// True once the sending window has closed for good.
    pub fn finished(&self, now: Instant) -> bool {
        now >= self.ends && self.sent_at.is_empty()
    }

    fn mss(&self) -> u64 {
        self.config.mss as u64
    }

    /// True while the congestion window admits another segment.
    fn window_open(&self) -> bool {
        self.flight_bytes() + self.mss() <= self.cwnd.max(self.mss())
    }

    /// True if the flow has anything it could transmit right now.
    fn has_work(&self, now: Instant) -> bool {
        if !self.rtx_queue.is_empty() {
            return true;
        }
        now < self.ends && self.window_open()
    }

    /// When the next transmission (or timer action) is due; `None` once
    /// the flow is over and everything is acknowledged.
    pub fn next_departure(&self, now: Instant) -> Option<Instant> {
        if self.has_work(now) {
            return Some(now.max(self.start));
        }
        if now < self.start {
            return Some(self.start);
        }
        if !self.sent_at.is_empty() {
            return self.timer;
        }
        // Window closed, nothing in flight, new data still allowed: the
        // next ACK will reopen the window (closed-loop re-arm).
        None
    }

    /// Emits the segment due at `now`, if any. RTO expiry is handled
    /// here too: an expired timer collapses the window and queues the
    /// oldest hole before anything is sent.
    pub fn emit(
        &mut self,
        now: Instant,
        ids: &mut PacketIdAllocator,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        if now < self.start {
            return None;
        }
        self.check_timer(now);
        let (seq, is_rtx) = if let Some(seq) = self.rtx_queue.pop_front() {
            (seq, true)
        } else if now < self.ends && self.window_open() {
            let seq = self.next_seq;
            self.next_seq += 1;
            (seq, false)
        } else {
            return None;
        };

        let size = self.config.mss.max(HEADER_LEN);
        let mut payload = pool.take(size);
        encode_header(&mut payload, seq, self.flow_id, now);
        let packet = Packet::udp(ids.allocate(), self.src, self.dst, payload, now);
        self.sent.push(SentRecord { seq, tx: now, payload: size });
        self.stats.transmissions += 1;
        if is_rtx {
            self.stats.retransmits += 1;
        }
        let retransmitted = is_rtx || self.sent_at.get(&seq).is_some_and(|&(_, r)| r);
        self.sent_at.insert(seq, (now, retransmitted));
        if self.timer.is_none() {
            self.timer = Some(now + self.effective_rto());
        }
        Some(packet)
    }

    /// Handles an echo (ACK) arriving at the sender.
    pub fn on_receive(&mut self, now: Instant, packet: &Packet) {
        let Some((seq, flow, tx)) = parse_header(&packet.payload) else {
            return;
        };
        if flow != self.flow_id {
            return;
        }
        if seq < self.cum_ack || self.sacked.contains(&seq) {
            return; // stale or already-counted acknowledgement
        }

        // Karn's rule: only never-retransmitted segments produce samples.
        if let Some(&(sent, retransmitted)) = self.sent_at.get(&seq) {
            if !retransmitted {
                let sample = now.saturating_duration_since(sent);
                self.update_rtt(sample);
                self.backoff = 1;
                self.rtts.push(RttRecord { seq, tx, rtt: sample });
            }
        }

        if seq == self.cum_ack {
            self.advance_cum_ack(now, seq);
        } else {
            // An out-of-order echo: selective knowledge plus a duplicate
            // acknowledgement for the hole at `cum_ack`.
            self.sacked.insert(seq);
            self.sent_at.remove(&seq);
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.cum_ack < self.recover {
                // Already retransmitted this hole in the current episode.
            } else if self.dup_acks == 3 {
                self.fast_retransmit();
            }
        }
        self.rearm_timer(now);
    }

    fn advance_cum_ack(&mut self, now: Instant, seq: u32) {
        self.sent_at.remove(&seq);
        self.stats.delivered_segments += 1;
        let mut newly_acked = 1u64;
        self.cum_ack = seq + 1;
        while self.sacked.remove(&self.cum_ack) {
            self.stats.delivered_segments += 1;
            newly_acked += 1;
            self.cum_ack += 1;
        }
        self.dup_acks = 0;
        if self.cum_ack >= self.recover {
            self.recover = self.cum_ack;
        } else if let Some(entry) = self.sent_at.get_mut(&self.cum_ack) {
            // NewReno partial ACK: we are still inside a recovery
            // episode and the cumulative ACK stopped at the next hole,
            // whose successors were all selectively acknowledged — the
            // segment is known lost. Retransmit it immediately instead
            // of waiting out one (backed-off) RTO per hole, which would
            // wedge the flow for the rest of the run after a burst loss.
            if !entry.1 && !self.rtx_queue.contains(&self.cum_ack) {
                entry.1 = true;
                self.rtx_queue.push_back(self.cum_ack);
            }
        }
        for _ in 0..newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += self.mss(); // slow start
            } else {
                // Congestion avoidance: ~one MSS per RTT.
                self.cwnd += (self.mss() * self.mss() / self.cwnd).max(1);
            }
        }
        self.stats.max_cwnd_bytes = self.stats.max_cwnd_bytes.max(self.cwnd);
        let _ = now;
    }

    fn fast_retransmit(&mut self) {
        self.stats.fast_retransmits += 1;
        self.ssthresh = (self.flight_bytes() / 2).max(2 * self.mss());
        self.cwnd = self.ssthresh;
        self.recover = self.next_seq;
        if let Some(entry) = self.sent_at.get_mut(&self.cum_ack) {
            entry.1 = true;
        }
        self.rtx_queue.push_back(self.cum_ack);
    }

    fn check_timer(&mut self, now: Instant) {
        let Some(at) = self.timer else {
            return;
        };
        if now < at || self.sent_at.is_empty() {
            return;
        }
        // RTO: collapse to one MSS, double the timer, retransmit the
        // oldest outstanding segment.
        self.stats.timeouts += 1;
        self.ssthresh = (self.flight_bytes() / 2).max(2 * self.mss());
        self.cwnd = self.mss();
        self.backoff = (self.backoff * 2).min(64);
        self.dup_acks = 0;
        self.recover = self.next_seq;
        let oldest = *self.sent_at.keys().next().expect("in-flight data exists");
        if let Some(entry) = self.sent_at.get_mut(&oldest) {
            entry.1 = true;
        }
        if !self.rtx_queue.contains(&oldest) {
            self.rtx_queue.push_back(oldest);
        }
        self.timer = Some(now + self.effective_rto());
    }

    fn rearm_timer(&mut self, now: Instant) {
        self.timer = if self.sent_at.is_empty() { None } else { Some(now + self.effective_rto()) };
    }

    fn effective_rto(&self) -> Duration {
        let base = match self.srtt {
            Some(srtt) => srtt + (self.rttvar * 4).max(Duration::from_millis(10)),
            None => self.rto,
        };
        let backed = base * u64::from(self.backoff);
        backed.clamp(self.config.min_rto, self.config.max_rto)
    }

    fn update_rtt(&mut self, sample: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let err = if sample > srtt { sample - srtt } else { srtt - sample };
                self.rttvar = self.rttvar.mul_frac(3, 4) + err / 4;
                self.srtt = Some(srtt.mul_frac(7, 8) + sample / 8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_ditg::TrafficReceiver;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn flow(duration: Duration) -> TcpFlow {
        let config = TcpConfig { duration, ..TcpConfig::default() };
        TcpFlow::new(config, 1, a("10.0.0.1"), a("10.0.0.2"), Instant::ZERO)
    }

    /// Runs the flow against a perfect fixed-RTT echo path.
    fn run_lossless(mut f: TcpFlow, rtt: Duration, horizon: Instant) -> TcpFlow {
        let mut rx = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let mut echoes: VecDeque<(Instant, Packet)> = VecDeque::new();
        let mut now = Instant::ZERO;
        while now <= horizon {
            while let Some(&(at, _)) = echoes.front() {
                if at > now {
                    break;
                }
                let (at, e) = echoes.pop_front().unwrap();
                f.on_receive(at, &e);
            }
            while let Some(p) = f.emit(now, &mut ids, &mut pool) {
                if let Some(echo) = rx.on_receive(now + rtt / 2, &p, &mut ids, &mut pool) {
                    echoes.push_back((now + rtt, echo));
                }
            }
            let next =
                f.next_departure(now).into_iter().chain(echoes.front().map(|&(at, _)| at)).min();
            match next {
                Some(t) if t > now => now = t,
                Some(_) => now += Duration::from_micros(100),
                None => break,
            }
        }
        f
    }

    #[test]
    fn slow_start_doubles_the_window_per_rtt() {
        let f = flow(Duration::from_secs(2));
        let f = run_lossless(f, Duration::from_millis(100), Instant::from_secs(3));
        // Growth must be superlinear early on: well over 20 segments in
        // 2 s at 100 ms RTT despite starting from a 2-segment window.
        assert!(f.stats().delivered_segments > 50, "stats: {:?}", f.stats());
        assert_eq!(f.stats().retransmits, 0);
        assert!(f.stats().max_cwnd_bytes > 16 * 1_024);
        assert!(f.finished(Instant::from_secs(5)));
    }

    #[test]
    fn rtt_estimator_converges_to_the_path_rtt() {
        let f = flow(Duration::from_secs(2));
        let f = run_lossless(f, Duration::from_millis(120), Instant::from_secs(3));
        let srtt = f.srtt().expect("samples were taken");
        let lo = Duration::from_millis(110);
        let hi = Duration::from_millis(130);
        assert!(srtt >= lo && srtt <= hi, "srtt drifted: {srtt}");
        assert!(!f.rtts().is_empty());
    }

    #[test]
    fn triple_dup_ack_triggers_fast_retransmit() {
        let mut f = flow(Duration::from_secs(10));
        let mut rx = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        // Open the window enough to have 5 segments outstanding.
        f.cwnd = 8 * 1_024;
        let mut packets = Vec::new();
        let mut now = Instant::ZERO;
        for _ in 0..5 {
            packets.push(f.emit(now, &mut ids, &mut pool).expect("window open"));
            now += Duration::from_millis(1);
        }
        // Segment 0 is lost; 1–4 arrive and echo.
        let before = f.stats();
        assert_eq!(before.fast_retransmits, 0);
        for p in &packets[1..] {
            let echo = rx.on_receive(now, p, &mut ids, &mut pool).unwrap();
            f.on_receive(now + Duration::from_millis(1), &echo);
            now += Duration::from_millis(1);
        }
        assert_eq!(f.stats().fast_retransmits, 1, "third dup ACK fires recovery");
        // The retransmission goes out ahead of new data and re-echoes.
        let rtx = f.emit(now, &mut ids, &mut pool).expect("retransmit queued");
        let (seq, _, _) = parse_header(&rtx.payload).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(f.stats().retransmits, 1);
        let echo = rx.on_receive(now, &rtx, &mut ids, &mut pool).unwrap();
        f.on_receive(now + Duration::from_millis(1), &echo);
        assert_eq!(f.stats().delivered_segments, 5, "cumulative ACK jumps the hole");
    }

    #[test]
    fn burst_loss_recovers_one_hole_per_partial_ack_without_timeouts() {
        let mut f = flow(Duration::from_secs(10));
        let mut rx = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        // 10 segments outstanding; segments 1..=4 are lost in one burst.
        f.cwnd = 16 * 1_024;
        let mut now = Instant::ZERO;
        let mut packets = Vec::new();
        for _ in 0..10 {
            packets.push(f.emit(now, &mut ids, &mut pool).expect("window open"));
            now += Duration::from_millis(1);
        }
        let mut arrived: Vec<Packet> = vec![packets[0].clone()];
        arrived.extend(packets[5..].iter().cloned());
        for p in arrived {
            now += Duration::from_millis(1);
            if let Some(echo) = rx.on_receive(now, &p, &mut ids, &mut pool) {
                f.on_receive(now + Duration::from_millis(1), &echo);
            }
        }
        assert_eq!(f.stats().fast_retransmits, 1, "third dup ACK opened recovery");
        // Every subsequent hole must come back via a partial-ACK-driven
        // retransmission, never an RTO.
        let mut guard = 0;
        while f.stats().delivered_segments < 10 {
            now += Duration::from_millis(1);
            let p = f.emit(now, &mut ids, &mut pool).expect("recovery keeps transmitting");
            if let Some(echo) = rx.on_receive(now, &p, &mut ids, &mut pool) {
                f.on_receive(now + Duration::from_millis(1), &echo);
            }
            guard += 1;
            assert!(guard < 32, "recovery did not converge");
        }
        assert_eq!(f.stats().timeouts, 0, "no RTO during partial-ACK recovery");
        assert_eq!(f.stats().retransmits, 4, "each lost segment retransmitted once");
    }

    #[test]
    fn timeout_collapses_window_and_backs_off() {
        let mut f = flow(Duration::from_secs(10));
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let p = f.emit(Instant::ZERO, &mut ids, &mut pool).expect("first segment");
        let (seq, _, _) = parse_header(&p.payload).unwrap();
        assert_eq!(seq, 0);
        let _second = f.emit(Instant::ZERO, &mut ids, &mut pool).expect("initial window is 2");
        assert!(f.emit(Instant::ZERO, &mut ids, &mut pool).is_none(), "window closed");
        // Nothing comes back: the RTO fires on the next emit call.
        let wake = f.next_departure(Instant::from_millis(1)).expect("timer armed");
        let rtx = f.emit(wake, &mut ids, &mut pool).expect("RTO retransmission");
        let (seq, _, _) = parse_header(&rtx.payload).unwrap();
        assert_eq!(seq, 0, "oldest segment retransmits first");
        assert_eq!(f.stats().timeouts, 1);
        assert_eq!(f.cwnd_bytes(), 1_024, "window collapses to one MSS");
        // Karn: no RTT samples were ever taken from the retransmission.
        assert!(f.rtts().is_empty());
    }

    #[test]
    fn stale_and_duplicate_echoes_are_ignored() {
        let mut f = flow(Duration::from_secs(10));
        let mut rx = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let p = f.emit(Instant::ZERO, &mut ids, &mut pool).unwrap();
        let echo = rx.on_receive(Instant::from_millis(10), &p, &mut ids, &mut pool).unwrap();
        f.on_receive(Instant::from_millis(20), &echo);
        let delivered = f.stats().delivered_segments;
        // Replaying the same echo changes nothing.
        f.on_receive(Instant::from_millis(30), &echo);
        assert_eq!(f.stats().delivered_segments, delivered);
    }

    #[test]
    fn flow_stops_offering_new_data_at_duration() {
        let f = flow(Duration::from_millis(500));
        let f = run_lossless(f, Duration::from_millis(50), Instant::from_secs(2));
        assert!(f.finished(Instant::from_secs(2)));
        assert!(f.next_departure(Instant::from_secs(2)).is_none());
        assert!(f.stats().delivered_segments > 0);
    }

    #[test]
    fn determinism_same_inputs_same_log() {
        let run = || {
            let f = flow(Duration::from_secs(1));
            let f = run_lossless(f, Duration::from_millis(80), Instant::from_secs(2));
            (f.sent().to_vec(), f.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }
}
