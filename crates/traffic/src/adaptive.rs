//! Adaptive-rate (video-like) sender.
//!
//! [`AdaptiveSender`] models a streaming source that probes the path by
//! watching its own delivered rate: it transmits fixed-size frames at
//! the current ladder level's bitrate, measures how many bytes were
//! echoed back per epoch, and walks a deterministic quality ladder —
//! one step up when the epoch delivered at least [`AdaptiveConfig::up_ppm`]
//! of the offered rate, a multiplicative step down when it fell below
//! [`AdaptiveConfig::down_ppm`]. There is no randomness anywhere in the
//! sender: given the same echo arrival times it reproduces the same
//! level trajectory bit for bit.

use umtslab_ditg::agent::{encode_header, parse_header, RttRecord, SentRecord, HEADER_LEN};
use umtslab_net::bytes::BufferPool;
use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::time::{serialization_time, Duration, Instant};

/// A single recorded ladder move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelChange {
    /// When the sender switched.
    pub at: Instant,
    /// Index into the ladder it switched to.
    pub level: usize,
    /// Delivered rate measured over the epoch that triggered the move.
    pub delivered_bps: u64,
}

/// Tuning knobs of an [`AdaptiveSender`].
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// The quality ladder, in bits per second, lowest first. Must be
    /// non-empty and strictly increasing.
    pub ladder_bps: Vec<u64>,
    /// Frame payload size in bytes (including the probe header).
    pub frame_bytes: usize,
    /// Feedback epoch: the delivered rate is evaluated once per epoch.
    pub epoch: Duration,
    /// Step up when delivered/offered ≥ this, in parts per million.
    pub up_ppm: u64,
    /// Step down when delivered/offered < this, in parts per million.
    pub down_ppm: u64,
    /// How long the sender keeps transmitting.
    pub duration: Duration,
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            // A DASH-like ladder spanning GPRS to HSDPA-era rates.
            ladder_bps: vec![64_000, 128_000, 256_000, 384_000, 768_000, 1_500_000],
            frame_bytes: 1_000,
            epoch: Duration::from_secs(2),
            up_ppm: 900_000,
            down_ppm: 600_000,
            duration: Duration::from_secs(60),
            sport: 9_000,
            dport: 9_001,
        }
    }
}

/// The deterministic rate-adaptive sender.
#[derive(Debug)]
pub struct AdaptiveSender {
    config: AdaptiveConfig,
    flow_id: u32,
    src: Endpoint,
    dst: Endpoint,
    start: Instant,
    ends: Instant,
    level: usize,
    next_seq: u32,
    next_frame: Instant,
    epoch_start: Instant,
    epoch_delivered_bytes: u64,
    changes: Vec<LevelChange>,
    sent: Vec<SentRecord>,
    rtts: Vec<RttRecord>,
}

impl AdaptiveSender {
    /// Creates a sender starting at `start` on the lowest ladder level.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty or not strictly increasing.
    pub fn new(
        config: AdaptiveConfig,
        flow_id: u32,
        src_addr: Ipv4Address,
        dst_addr: Ipv4Address,
        start: Instant,
    ) -> AdaptiveSender {
        assert!(!config.ladder_bps.is_empty(), "ladder must be non-empty");
        assert!(
            config.ladder_bps.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly increasing"
        );
        let src = Endpoint::new(src_addr, config.sport);
        let dst = Endpoint::new(dst_addr, config.dport);
        let ends = start + config.duration;
        AdaptiveSender {
            config,
            flow_id,
            src,
            dst,
            start,
            ends,
            level: 0,
            next_seq: 0,
            next_frame: start,
            epoch_start: start,
            epoch_delivered_bytes: 0,
            changes: Vec::new(),
            sent: Vec::new(),
            rtts: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Stream start time.
    pub fn start_time(&self) -> Instant {
        self.start
    }

    /// Current ladder level index.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current offered bitrate.
    pub fn current_level_bps(&self) -> u64 {
        self.config.ladder_bps[self.level]
    }

    /// Every ladder move made so far.
    pub fn level_changes(&self) -> &[LevelChange] {
        &self.changes
    }

    /// The send log.
    pub fn sent(&self) -> &[SentRecord] {
        &self.sent
    }

    /// RTT samples from echoed frames.
    pub fn rtts(&self) -> &[RttRecord] {
        &self.rtts
    }

    /// Inter-frame gap at the current level: the time the current level
    /// takes to "play out" one frame.
    fn frame_gap(&self) -> Duration {
        serialization_time(self.config.frame_bytes, self.current_level_bps())
    }

    /// When the next frame is due; `None` once the stream has ended.
    pub fn next_departure(&self) -> Option<Instant> {
        (self.next_frame < self.ends).then_some(self.next_frame)
    }

    /// Emits the frame due at `now`, if any.
    pub fn emit(
        &mut self,
        now: Instant,
        ids: &mut PacketIdAllocator,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        if now < self.next_frame || self.next_frame >= self.ends {
            return None;
        }
        self.maybe_adapt(now);
        let size = self.config.frame_bytes.max(HEADER_LEN);
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut payload = pool.take(size);
        encode_header(&mut payload, seq, self.flow_id, now);
        let packet = Packet::udp(ids.allocate(), self.src, self.dst, payload, now);
        self.sent.push(SentRecord { seq, tx: now, payload: size });
        self.next_frame = self.next_frame.max(now) + self.frame_gap();
        Some(packet)
    }

    /// Handles an echoed frame: credits the epoch's delivered byte count
    /// and records the RTT sample.
    pub fn on_receive(&mut self, now: Instant, packet: &Packet) {
        let Some((seq, flow, tx)) = parse_header(&packet.payload) else {
            return;
        };
        if flow != self.flow_id {
            return;
        }
        self.epoch_delivered_bytes += self.config.frame_bytes as u64;
        self.rtts.push(RttRecord { seq, tx, rtt: now.saturating_duration_since(tx) });
        self.maybe_adapt(now);
    }

    /// Closes out any elapsed epochs and walks the ladder.
    fn maybe_adapt(&mut self, now: Instant) {
        while now.saturating_duration_since(self.epoch_start) >= self.config.epoch {
            let offered_bps = self.current_level_bps();
            let secs = self.config.epoch;
            // delivered_bps = bytes * 8 / epoch_seconds, all integer.
            let delivered_bps =
                (self.epoch_delivered_bytes * 8 * 1_000_000) / secs.total_micros().max(1);
            let level_before = self.level;
            let threshold_up = offered_bps.mul_ppm_floor(self.config.up_ppm);
            let threshold_down = offered_bps.mul_ppm_floor(self.config.down_ppm);
            if delivered_bps >= threshold_up && self.level + 1 < self.config.ladder_bps.len() {
                self.level += 1;
            } else if delivered_bps < threshold_down {
                // Multiplicative decrease: fall to the highest level at
                // or below half the current offered rate.
                let target = offered_bps / 2;
                self.level =
                    self.config.ladder_bps.iter().rposition(|&bps| bps <= target).unwrap_or(0);
            }
            if self.level != level_before {
                self.changes.push(LevelChange {
                    at: self.epoch_start + self.config.epoch,
                    level: self.level,
                    delivered_bps,
                });
            }
            self.epoch_start += self.config.epoch;
            self.epoch_delivered_bytes = 0;
        }
    }
}

/// Integer parts-per-million scaling without intermediate overflow for
/// the bitrates this crate deals in (≤ tens of Gbps).
trait MulPpm {
    fn mul_ppm_floor(self, ppm: u64) -> u64;
}

impl MulPpm for u64 {
    fn mul_ppm_floor(self, ppm: u64) -> u64 {
        self / 1_000_000 * ppm + self % 1_000_000 * ppm / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_ditg::TrafficReceiver;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn sender(duration: Duration) -> AdaptiveSender {
        let config = AdaptiveConfig { duration, ..AdaptiveConfig::default() };
        AdaptiveSender::new(config, 7, a("10.0.0.1"), a("10.0.0.2"), Instant::ZERO)
    }

    /// Drives the sender against an echo path that delivers every frame
    /// up to `cap_bps` worth of traffic per epoch and drops the rest.
    fn run_capped(mut s: AdaptiveSender, cap_bps: u64, horizon: Instant) -> AdaptiveSender {
        let mut rx = TrafficReceiver::new(7, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let rtt = Duration::from_millis(60);
        let mut now = Instant::ZERO;
        let mut window_start = Instant::ZERO;
        let mut window_bits: u64 = 0;
        while now <= horizon {
            if let Some(p) = s.emit(now, &mut ids, &mut pool) {
                if now.saturating_duration_since(window_start) >= Duration::from_secs(1) {
                    window_start = now;
                    window_bits = 0;
                }
                let bits = (p.payload.len() as u64) * 8;
                if window_bits + bits <= cap_bps {
                    window_bits += bits;
                    if let Some(echo) = rx.on_receive(now + rtt / 2, &p, &mut ids, &mut pool) {
                        s.on_receive(now + rtt, &echo);
                    }
                }
                continue;
            }
            match s.next_departure() {
                Some(t) if t > now => now = t,
                Some(_) => now += Duration::from_micros(100),
                None => break,
            }
        }
        s
    }

    #[test]
    fn clean_path_climbs_the_ladder() {
        let s = sender(Duration::from_secs(30));
        let s = run_capped(s, u64::MAX, Instant::from_secs(31));
        assert_eq!(s.level(), s.config().ladder_bps.len() - 1, "reaches the top level");
        assert!(!s.level_changes().is_empty());
        // Every change on a clean path is a single step up.
        let mut prev = 0usize;
        for c in s.level_changes() {
            assert_eq!(c.level, prev + 1);
            prev = c.level;
        }
    }

    #[test]
    fn constrained_path_caps_the_level() {
        let s = sender(Duration::from_secs(30));
        let s = run_capped(s, 150_000, Instant::from_secs(31));
        // At 256 kbps the path delivers 150k < the 60% down threshold
        // (153.6k), so every visit to 256k steps back down; the sender
        // can never hold a level above 256 kbps.
        assert!(s.current_level_bps() <= 256_000, "settled at {}", s.current_level_bps());
        assert!(!s.level_changes().is_empty());
    }

    #[test]
    fn starvation_steps_down_multiplicatively() {
        let mut s = sender(Duration::from_secs(30));
        s.level = 5; // start at 1.5 Mbps
        let s = run_capped(s, 100_000, Instant::from_secs(10));
        let first_drop = s.level_changes().first().expect("a downward move happened");
        // 1.5 Mbps halves to 750 kbps: the highest rung ≤ 750k is 384k
        // (index 3) — a multi-rung fall, not a single step.
        assert!(first_drop.level <= 3, "fell to {}", first_drop.level);
        // 100 kbps delivered at the 128k rung is 78% — above the down
        // threshold, below the up threshold — so the sender parks there.
        assert!(s.level() <= 1, "settled at rung {}", s.level());
    }

    #[test]
    fn no_rng_identical_runs_are_identical() {
        let run = || {
            let s = sender(Duration::from_secs(10));
            let s = run_capped(s, 300_000, Instant::from_secs(11));
            (s.level_changes().to_vec(), s.sent().len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn frame_pacing_matches_the_level_bitrate() {
        let mut s = sender(Duration::from_secs(10));
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let first = s.next_departure().unwrap();
        s.emit(first, &mut ids, &mut pool).unwrap();
        let second = s.next_departure().unwrap();
        // 1000 bytes at 64 kbps = 125 ms between frames.
        assert_eq!(second.saturating_duration_since(first), Duration::from_millis(125));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn ladder_must_increase() {
        let config = AdaptiveConfig { ladder_bps: vec![100, 100], ..AdaptiveConfig::default() };
        AdaptiveSender::new(config, 1, a("10.0.0.1"), a("10.0.0.2"), Instant::ZERO);
    }
}
