//! umtslab-traffic: trace-driven link models, adaptive senders and a
//! congestion-controlled flow library.
//!
//! This crate grows the testbed's workload vocabulary beyond open-loop
//! D-ITG probe flows, in three pieces:
//!
//! * [`trace`] — a zero-dependency recorded-trace format (CSV or a JSON
//!   subset) describing time-varying link capacity and loss, parsed into
//!   integer [`TraceSegment`]s and installed on a `net` pipe as a
//!   [`umtslab_net::link::LinkSchedule`]. The serializer is canonical:
//!   `serialize(parse(t))` is a fixed point, the same round-trip
//!   discipline the pack format uses.
//! * [`adaptive`] — a deterministic video-like [`AdaptiveSender`] that
//!   walks a bitrate ladder on delivered-rate feedback.
//! * [`tcp`] — a TCP-ish congestion-controlled [`TcpFlow`] (slow start,
//!   congestion avoidance, fast retransmit, Karn/Jacobson RTO) speaking
//!   the D-ITG probe wire format, with strictly integer state.
//!
//! [`scenario`] packages the FACH/DCH switching-policy presets for the
//! INRIA experiment; the closed-loop orchestration against a
//! `UmtsAttachment` lives in the `umtslab` core crate.
//!
//! Everything here obeys the workspace determinism rules: integer
//! microsecond time, no wall clock, no hash-order iteration, and the
//! only RNG use is the link schedule's loss draw inside `net` itself.

pub mod adaptive;
pub mod scenario;
pub mod tcp;
pub mod trace;

pub use adaptive::{AdaptiveConfig, AdaptiveSender, LevelChange};
pub use scenario::{PolicyReport, SwitchingPolicy};
pub use tcp::{TcpConfig, TcpFlow, TcpStats};
pub use trace::{Trace, TraceError, TraceSegment, MAX_LOSS_PPM};
