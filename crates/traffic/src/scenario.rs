//! The INRIA switching-policy experiment: RRC timers versus TCP.
//!
//! The paper's INRIA testbed measured how the operator's FACH/DCH
//! switching policy interacts with TCP throughput: an aggressive
//! demotion policy releases the dedicated channel during TCP's own idle
//! gaps (RTO backoff, window exhaustion), so every recovery pays the
//! multi-second promotion again; a conservative policy keeps the channel
//! up and lets the congestion window do its job. This module packages
//! the policy presets and the per-policy report row the runner prints —
//! the orchestration itself lives in `umtslab::crosslayer`, which wires
//! a [`crate::TcpFlow`] through a `UmtsAttachment` whose uplink backlog
//! feeds the RRC controller.

use umtslab_sim::time::Duration;
use umtslab_umts::rrc::{RrcConfig, RrcDwell};

/// A named FACH/DCH switching policy: an [`RrcConfig`] preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchingPolicy {
    /// Demote fast (1 s DCH, 5 s FACH): radio-efficient, TCP-hostile.
    Aggressive,
    /// The timers the paper's operator traces suggest (5 s / 30 s).
    Operator,
    /// Demote late (15 s DCH, 60 s FACH): TCP-friendly, radio-hungry.
    Conservative,
    /// Never demote within an experiment (timers beyond the horizon).
    AlwaysOn,
}

impl SwitchingPolicy {
    /// Every policy, in the order reports are printed.
    pub const ALL: [SwitchingPolicy; 4] = [
        SwitchingPolicy::Aggressive,
        SwitchingPolicy::Operator,
        SwitchingPolicy::Conservative,
        SwitchingPolicy::AlwaysOn,
    ];

    /// The stable name used in CLI arguments and report rows.
    pub fn name(self) -> &'static str {
        match self {
            SwitchingPolicy::Aggressive => "aggressive",
            SwitchingPolicy::Operator => "operator",
            SwitchingPolicy::Conservative => "conservative",
            SwitchingPolicy::AlwaysOn => "always-on",
        }
    }

    /// Parses a CLI name back to the policy.
    pub fn parse(s: &str) -> Option<SwitchingPolicy> {
        SwitchingPolicy::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The RRC timer preset implementing this policy. Everything except
    /// the inactivity timers matches [`RrcConfig::default`], so the
    /// experiment isolates the switching policy as the one variable.
    pub fn rrc_config(self) -> RrcConfig {
        let base = RrcConfig::default();
        match self {
            SwitchingPolicy::Aggressive => RrcConfig {
                dch_inactivity: Duration::from_secs(1),
                fach_inactivity: Duration::from_secs(5),
                ..base
            },
            SwitchingPolicy::Operator => base,
            SwitchingPolicy::Conservative => RrcConfig {
                dch_inactivity: Duration::from_secs(15),
                fach_inactivity: Duration::from_secs(60),
                ..base
            },
            SwitchingPolicy::AlwaysOn => RrcConfig {
                dch_inactivity: Duration::from_secs(86_400),
                fach_inactivity: Duration::from_secs(86_400),
                ..base
            },
        }
    }
}

/// One report row of the switching-policy experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyReport {
    /// Which policy produced the row.
    pub policy: SwitchingPolicy,
    /// RNG seed of the run.
    pub seed: u64,
    /// Goodput: cumulatively acknowledged payload over the experiment
    /// horizon, in bits per second.
    pub goodput_bps: u64,
    /// Segments cumulatively acknowledged.
    pub delivered_segments: u64,
    /// Segments retransmitted (fast retransmit + RTO).
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// Highest congestion window reached, in bytes.
    pub max_cwnd_bytes: u64,
    /// RRC transitions over the run.
    pub rrc_transitions: u64,
    /// Per-state dwell times and promotion latency totals.
    pub dwell: RrcDwell,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in SwitchingPolicy::ALL {
            assert_eq!(SwitchingPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SwitchingPolicy::parse("bogus"), None);
    }

    #[test]
    fn presets_only_vary_the_inactivity_timers() {
        let base = RrcConfig::default();
        for p in SwitchingPolicy::ALL {
            let c = p.rrc_config();
            assert_eq!(c.promotion_delay, base.promotion_delay, "{}", p.name());
            assert_eq!(c.upgrade_delay, base.upgrade_delay);
            assert_eq!(c.upgrade_backlog_threshold, base.upgrade_backlog_threshold);
            assert_eq!(c.upgrade_sustain, base.upgrade_sustain);
        }
    }

    #[test]
    fn aggressive_demotes_sooner_than_conservative() {
        let a = SwitchingPolicy::Aggressive.rrc_config();
        let c = SwitchingPolicy::Conservative.rrc_config();
        assert!(a.dch_inactivity < c.dch_inactivity);
        assert!(a.fach_inactivity < c.fach_inactivity);
    }
}
