//! Recorded link traces: time-varying capacity/loss schedules.
//!
//! A *trace* is a piecewise-constant description of a link over time —
//! the CloudEmu-style recorded cellular bandwidth trace. Each segment
//! starts at an offset from the beginning of the replay and pins the
//! link's capacity (bits per second) and loss rate (parts per million)
//! until the next segment begins. The last segment holds forever.
//!
//! Two zero-dependency input syntaxes are accepted, dispatched on the
//! first non-whitespace byte:
//!
//! * **CSV** (the canonical form):
//!
//!   ```text
//!   # umtslab-trace v1 name=umts_drive
//!   # at_s,rate_bps,loss_ppm
//!   0.000000,384000,0
//!   2.500000,128000,12000
//!   ```
//!
//! * a **JSON subset** (`{"name": …, "segments": [{"at_s": …,
//!   "rate_bps": …, "loss_ppm": …}, …]}`) for interop with recorded
//!   traces from other tools.
//!
//! Both parsers report spanned errors (`line:col`). Floating-point
//! values exist **only at this parse boundary**: offsets become integer
//! microseconds and rates integer bits per second the moment they are
//! read, exactly like `umtslab-pack`'s schema decode, so no float ever
//! reaches simulator state (the D4 discipline; see docs/TRAFFIC.md).
//!
//! [`serialize`] emits the canonical CSV form and satisfies the same
//! fixed-point guarantee as the pack serializer:
//! `serialize(parse(t)) == serialize(parse(serialize(parse(t))))`.

use core::fmt;

use umtslab_net::link::{LinkSchedule, LinkSegment};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Duration;

/// One piecewise-constant segment of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Offset from the start of the replay at which this segment begins.
    pub at: Duration,
    /// Link capacity while the segment is active, in bits per second.
    pub rate_bps: u64,
    /// Random loss while the segment is active, in parts per million.
    pub loss_ppm: u32,
}

/// A parsed link trace: a name and its ordered segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace name (from the header line / `"name"` key).
    pub name: String,
    /// Segments in strictly increasing `at` order; never empty.
    pub segments: Vec<TraceSegment>,
}

/// A parse failure with its position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for TraceError {}

fn err<T>(line: usize, col: usize, message: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError { line, col, message: message.into() })
}

/// Maximum loss a segment may declare (100%).
pub const MAX_LOSS_PPM: u32 = 1_000_000;

impl Trace {
    /// Parses a trace from either accepted syntax, dispatching on the
    /// first non-whitespace byte (`{` → JSON subset, otherwise CSV).
    pub fn parse(text: &str) -> Result<Trace, TraceError> {
        match text.trim_start().bytes().next() {
            Some(b'{') => parse_json(text),
            _ => parse_csv(text),
        }
    }

    /// The total span covered before the final (infinite) segment.
    pub fn span(&self) -> Duration {
        self.segments.last().map_or(Duration::ZERO, |s| s.at)
    }

    /// Converts the trace into the link-layer schedule that drives
    /// [`umtslab_net::link::Pipe`] replay.
    pub fn to_schedule(&self) -> LinkSchedule {
        LinkSchedule::new(
            self.segments
                .iter()
                .map(|s| LinkSegment { start: s.at, rate_bps: s.rate_bps, loss_ppm: s.loss_ppm })
                .collect(),
        )
    }

    /// Validates ordering and bounds; used by both parsers.
    fn validate(self, line_of: impl Fn(usize) -> (usize, usize)) -> Result<Trace, TraceError> {
        if self.name.is_empty() {
            return err(1, 1, "trace has no name");
        }
        if self.segments.is_empty() {
            return err(1, 1, "trace has no segments");
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let (line, col) = line_of(i);
            if i == 0 && !seg.at.is_zero() {
                return err(line, col, "first segment must start at 0");
            }
            if i > 0 && seg.at <= self.segments[i - 1].at {
                return err(line, col, "segment offsets must strictly increase");
            }
            if seg.loss_ppm > MAX_LOSS_PPM {
                return err(line, col, format!("loss_ppm exceeds {MAX_LOSS_PPM}"));
            }
        }
        Ok(self)
    }
}

/// Formats a duration as exact decimal seconds with a 6-digit fraction.
///
/// Microseconds always have an exact 6-digit decimal representation, so
/// this is a bijection — the root of the serializer's fixed point.
fn fmt_at(d: Duration) -> String {
    format!("{}.{:06}", d.total_secs(), d.total_micros() % 1_000_000)
}

/// Renders a trace in canonical CSV form.
///
/// The output is a pure function of the (integer) trace contents, so
/// `serialize ∘ parse` is idempotent: parsing the output and serializing
/// again reproduces it byte for byte.
pub fn serialize(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str(&format!("# umtslab-trace v1 name={}\n", trace.name));
    out.push_str("# at_s,rate_bps,loss_ppm\n");
    for seg in &trace.segments {
        out.push_str(&format!("{},{},{}\n", fmt_at(seg.at), seg.rate_bps, seg.loss_ppm));
    }
    out
}

/// Parses a decimal seconds value (`12.345678`) into a duration without
/// going through floating point: integer and fraction digits are read
/// separately and the fraction is padded/truncated to microseconds.
fn parse_secs(tok: &str, line: usize, col: usize) -> Result<Duration, TraceError> {
    let (int_part, frac_part) = match tok.split_once('.') {
        Some((i, f)) => (i, f),
        None => (tok, ""),
    };
    if int_part.is_empty() || !int_part.bytes().all(|b| b.is_ascii_digit()) {
        return err(line, col, format!("invalid seconds value `{tok}`"));
    }
    if !frac_part.bytes().all(|b| b.is_ascii_digit()) || frac_part.len() > 6 {
        return err(
            line,
            col,
            format!("seconds value `{tok}` has more than microsecond precision"),
        );
    }
    let secs: u64 = match int_part.parse() {
        Ok(s) => s,
        Err(_) => return err(line, col, format!("seconds value `{tok}` out of range")),
    };
    let mut frac: u64 = 0;
    for b in frac_part.bytes() {
        frac = frac * 10 + u64::from(b - b'0');
    }
    frac *= 10u64.pow(6 - frac_part.len() as u32);
    Ok(Duration::from_secs(secs) + Duration::from_micros(frac))
}

/// Parses an unsigned integer field, tolerating a float-formatted value
/// (`384000.0`) by requiring the fraction to be all zeros: recorded
/// traces from float-happy tools stay loadable, but capacity is an
/// integer the moment it enters the system.
fn parse_uint(tok: &str, line: usize, col: usize, what: &str) -> Result<u64, TraceError> {
    let int_part = match tok.split_once('.') {
        Some((i, f)) if !f.is_empty() && f.bytes().all(|b| b == b'0') => i,
        Some(_) => return err(line, col, format!("{what} `{tok}` must be an integer")),
        None => tok,
    };
    if int_part.is_empty() || !int_part.bytes().all(|b| b.is_ascii_digit()) {
        return err(line, col, format!("invalid {what} `{tok}`"));
    }
    int_part.parse().map_err(|_| TraceError {
        line,
        col,
        message: format!("{what} `{tok}` out of range"),
    })
}

fn parse_csv(text: &str) -> Result<Trace, TraceError> {
    let mut name = String::new();
    let mut segments = Vec::new();
    let mut seg_lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(rest) = comment.strip_prefix("umtslab-trace") {
                let rest = rest.trim();
                let Some(version_tok) = rest.split_whitespace().next() else {
                    return err(lineno, 1, "header missing version");
                };
                if version_tok != "v1" {
                    return err(lineno, 1, format!("unsupported trace version `{version_tok}`"));
                }
                for kv in rest.split_whitespace().skip(1) {
                    if let Some(n) = kv.strip_prefix("name=") {
                        name = n.to_string();
                    }
                }
            }
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return err(lineno, 1, format!("expected 3 fields, got {}", fields.len()));
        }
        let col_of = |i: usize| raw.find(fields[i]).map_or(1, |p| p + 1);
        let at = parse_secs(fields[0], lineno, col_of(0))?;
        let rate_bps = parse_uint(fields[1], lineno, col_of(1), "rate_bps")?;
        let loss_ppm = parse_uint(fields[2], lineno, col_of(2), "loss_ppm")?;
        if loss_ppm > u64::from(MAX_LOSS_PPM) {
            return err(lineno, col_of(2), format!("loss_ppm exceeds {MAX_LOSS_PPM}"));
        }
        segments.push(TraceSegment { at, rate_bps, loss_ppm: loss_ppm as u32 });
        seg_lines.push(lineno);
    }
    Trace { name, segments }.validate(|i| (seg_lines.get(i).copied().unwrap_or(1), 1))
}

// --- JSON subset ---------------------------------------------------------

/// A minimal character cursor with line:col tracking for the JSON parser.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor { bytes: text.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b == want => {
                self.bump();
                Ok(())
            }
            got => err(
                self.line,
                self.col,
                format!(
                    "expected `{}`, found {}",
                    want as char,
                    got.map_or("end of input".to_string(), |b| format!("`{}`", b as char))
                ),
            ),
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => return err(self.line, self.col, "unsupported escape in string"),
                },
                Some(b) => out.push(b as char),
                None => return err(self.line, self.col, "unterminated string"),
            }
        }
    }

    /// Reads a bare numeric token (digits and at most one dot).
    fn number(&mut self) -> Result<(String, usize, usize), TraceError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let mut tok = String::new();
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.')) {
            tok.push(self.bump().expect("peeked") as char);
        }
        if tok.is_empty() {
            return err(line, col, "expected a number");
        }
        Ok((tok, line, col))
    }
}

fn parse_json(text: &str) -> Result<Trace, TraceError> {
    let mut c = Cursor::new(text);
    c.expect(b'{')?;
    let mut name = String::new();
    let mut segments = Vec::new();
    let mut seg_spans: Vec<(usize, usize)> = Vec::new();
    loop {
        c.skip_ws();
        let key = c.string()?;
        c.expect(b':')?;
        match key.as_str() {
            "name" => name = c.string()?,
            "segments" => {
                c.expect(b'[')?;
                loop {
                    c.skip_ws();
                    if c.peek() == Some(b']') {
                        c.bump();
                        break;
                    }
                    let (seg, span) = parse_json_segment(&mut c)?;
                    segments.push(seg);
                    seg_spans.push(span);
                    c.skip_ws();
                    if c.peek() == Some(b',') {
                        c.bump();
                    } else {
                        c.expect(b']')?;
                        break;
                    }
                }
            }
            other => return err(c.line, c.col, format!("unknown key `{other}`")),
        }
        c.skip_ws();
        if c.peek() == Some(b',') {
            c.bump();
        } else {
            c.expect(b'}')?;
            break;
        }
    }
    Trace { name, segments }.validate(|i| seg_spans.get(i).copied().unwrap_or((1, 1)))
}

fn parse_json_segment(c: &mut Cursor<'_>) -> Result<(TraceSegment, (usize, usize)), TraceError> {
    c.expect(b'{')?;
    let span = (c.line, c.col);
    let mut at = None;
    let mut rate_bps = None;
    let mut loss_ppm = None;
    loop {
        c.skip_ws();
        let key = c.string()?;
        c.expect(b':')?;
        let (tok, line, col) = c.number()?;
        match key.as_str() {
            "at_s" => at = Some(parse_secs(&tok, line, col)?),
            "rate_bps" => rate_bps = Some(parse_uint(&tok, line, col, "rate_bps")?),
            "loss_ppm" => {
                let v = parse_uint(&tok, line, col, "loss_ppm")?;
                if v > u64::from(MAX_LOSS_PPM) {
                    return err(line, col, format!("loss_ppm exceeds {MAX_LOSS_PPM}"));
                }
                loss_ppm = Some(v as u32);
            }
            other => return err(line, col, format!("unknown segment key `{other}`")),
        }
        c.skip_ws();
        if c.peek() == Some(b',') {
            c.bump();
        } else {
            c.expect(b'}')?;
            break;
        }
    }
    let Some(at) = at else {
        return err(span.0, span.1, "segment missing `at_s`");
    };
    let Some(rate_bps) = rate_bps else {
        return err(span.0, span.1, "segment missing `rate_bps`");
    };
    Ok((TraceSegment { at, rate_bps, loss_ppm: loss_ppm.unwrap_or(0) }, span))
}

/// Generates a structurally valid random trace for property tests:
/// 1–40 segments with microsecond-granular offsets, rates across six
/// orders of magnitude and occasional loss.
pub fn random_trace(seed: u64) -> Trace {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x7261_6365);
    let n = rng.uniform_u64(1, 40) as usize;
    let mut at = Duration::ZERO;
    let mut segments = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 {
            at += Duration::from_micros(rng.uniform_u64(1, 30_000_000));
        }
        let rate_bps = match rng.uniform_u64(0, 3) {
            0 => rng.uniform_u64(8_000, 64_000),
            1 => rng.uniform_u64(64_000, 2_000_000),
            2 => rng.uniform_u64(2_000_000, 100_000_000),
            _ => 0, // an outage-as-ideal segment exercises rate 0
        };
        let loss_ppm = if rng.uniform_u64(0, 4) == 0 {
            rng.uniform_u64(0, u64::from(MAX_LOSS_PPM)) as u32
        } else {
            0
        };
        segments.push(TraceSegment { at, rate_bps, loss_ppm });
    }
    Trace { name: format!("random-{seed}"), segments }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
# umtslab-trace v1 name=drive
# at_s,rate_bps,loss_ppm
0.000000,384000,0
2.500000,128000,12000
7.250000,384000,0
";

    #[test]
    fn csv_parses_to_integer_segments() {
        let t = Trace::parse(CSV).unwrap();
        assert_eq!(t.name, "drive");
        assert_eq!(t.segments.len(), 3);
        assert_eq!(t.segments[1].at, Duration::from_micros(2_500_000));
        assert_eq!(t.segments[1].rate_bps, 128_000);
        assert_eq!(t.segments[1].loss_ppm, 12_000);
        assert_eq!(t.span(), Duration::from_micros(7_250_000));
    }

    #[test]
    fn json_subset_parses_equivalently() {
        let json = r#"{
            "name": "drive",
            "segments": [
                {"at_s": 0, "rate_bps": 384000, "loss_ppm": 0},
                {"at_s": 2.5, "rate_bps": 128000.0, "loss_ppm": 12000},
                {"at_s": 7.25, "rate_bps": 384000}
            ]
        }"#;
        let from_json = Trace::parse(json).unwrap();
        let from_csv = Trace::parse(CSV).unwrap();
        assert_eq!(from_json, from_csv);
        // And both serialize to the same canonical CSV.
        assert_eq!(serialize(&from_json), serialize(&from_csv));
    }

    #[test]
    fn serializer_is_a_fixed_point() {
        let once = serialize(&Trace::parse(CSV).unwrap());
        let twice = serialize(&Trace::parse(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn fixed_point_holds_over_random_traces() {
        for seed in 0..200u64 {
            let t = random_trace(seed);
            let once = serialize(&t);
            let parsed = Trace::parse(&once).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(parsed, t, "seed {seed}: canonical form must re-parse to itself");
            let twice = serialize(&Trace::parse(&once).unwrap());
            assert_eq!(once, twice, "seed {seed}: serialize∘parse must be idempotent");
        }
    }

    #[test]
    fn errors_carry_spans() {
        let e = Trace::parse("# umtslab-trace v1 name=x\n0.0,abc,0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.col > 1, "column points at the bad field: {e}");
        assert!(e.message.contains("rate_bps"));

        let e = Trace::parse("# umtslab-trace v1 name=x\n0.0,1,0\n0.0,2,0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("strictly increase"));

        let e = Trace::parse("{\"name\": \"x\", \"segments\": [{\"rate_bps\": 5}]}").unwrap_err();
        assert!(e.message.contains("at_s"), "{e}");
    }

    #[test]
    fn first_segment_must_cover_time_zero() {
        let e = Trace::parse("# umtslab-trace v1 name=x\n1.0,5,0\n").unwrap_err();
        assert!(e.message.contains("start at 0"), "{e}");
    }

    #[test]
    fn float_capacity_must_be_integral() {
        let e = Trace::parse("# umtslab-trace v1 name=x\n0.0,384000.5,0\n").unwrap_err();
        assert!(e.message.contains("must be an integer"), "{e}");
    }

    #[test]
    fn sub_microsecond_offsets_are_rejected_not_rounded() {
        let e = Trace::parse("# umtslab-trace v1 name=x\n0.0000001,5,0\n").unwrap_err();
        assert!(e.message.contains("microsecond precision"), "{e}");
    }

    #[test]
    fn schedule_conversion_preserves_segments() {
        let t = Trace::parse(CSV).unwrap();
        let s = t.to_schedule();
        assert_eq!(s.rate_at(Duration::ZERO), 384_000);
        assert_eq!(s.rate_at(Duration::from_secs(3)), 128_000);
        assert_eq!(s.loss_ppm_at(Duration::from_secs(3)), 12_000);
        assert_eq!(s.rate_at(Duration::from_secs(100)), 384_000);
    }
}
