//! Property-based tests for the UMTS stack: framing robustness, FCS error
//! detection, negotiation convergence and bearer conservation.

use proptest::prelude::*;

use umtslab_net::link::JitterModel;
use umtslab_net::packet::{Packet, PacketId};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::bearer::{BearerConfig, UmtsBearer};
use umtslab_umts::ppp::frame::{encode_frame, protocol, Deframer};
use umtslab_umts::ppp::{Credentials, PppEndpoint, PppServerConfig};

fn addr(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

fn server_config() -> PppServerConfig {
    PppServerConfig {
        own_addr: addr("10.64.0.1"),
        assign_peer: addr("10.64.3.7"),
        dns: [addr("10.64.0.53"), addr("10.64.0.54")],
        require_pap: true,
        expected_credentials: None,
    }
}

proptest! {
    /// Frames round-trip arbitrary payloads and protocols.
    #[test]
    fn frame_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        proto in any::<u16>(),
    ) {
        let encoded = encode_frame(proto, &payload);
        let mut d = Deframer::new();
        let frames = d.feed(&encoded);
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(frames[0].protocol, proto);
        prop_assert_eq!(&frames[0].payload, &payload);
        prop_assert_eq!(d.errors, 0);
    }

    /// Frames survive arbitrary chunking of the byte stream.
    #[test]
    fn frame_chunking_is_transparent(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 1..8),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend(encode_frame(protocol::IPV4, p));
        }
        let mut d = Deframer::new();
        let mut frames = Vec::new();
        for c in stream.chunks(chunk) {
            frames.extend(d.feed(c));
        }
        prop_assert_eq!(frames.len(), payloads.len());
        for (f, p) in frames.iter().zip(&payloads) {
            prop_assert_eq!(&f.payload, p);
        }
    }

    /// Any single-bit error inside a frame is either caught by the FCS or
    /// breaks framing — never silently delivered as valid different data.
    #[test]
    fn fcs_catches_single_bit_errors(
        payload in proptest::collection::vec(any::<u8>(), 1..300),
        bit in 0usize..8,
        pos_seed in any::<usize>(),
    ) {
        let encoded = encode_frame(protocol::IPV4, &payload);
        // Avoid flipping the outer flags: that only truncates framing,
        // which is legitimate loss, not corruption acceptance.
        if encoded.len() <= 2 {
            return Ok(());
        }
        let pos = 1 + pos_seed % (encoded.len() - 2);
        let mut damaged = encoded.clone();
        damaged[pos] ^= 1 << bit;
        let mut d = Deframer::new();
        let frames = d.feed(&damaged);
        for f in frames {
            // If a frame did come out whole, it must be byte-identical to
            // the original (the flip created an escape that decoded back).
            prop_assert_eq!(f.payload, payload.clone());
        }
    }

    /// PPP sessions converge for any credentials accepted by the server
    /// and any magic numbers, and both ends agree on the address pair.
    #[test]
    fn ppp_negotiation_converges(
        client_magic in 1u32..,
        server_magic in 1u32..,
        user in "[a-z]{1,12}",
        pass in "[a-z0-9]{1,12}",
    ) {
        prop_assume!(client_magic != server_magic);
        let mut client =
            PppEndpoint::client(client_magic, Some(Credentials::new(user, pass)), false);
        let mut server = PppEndpoint::server(server_magic, server_config());
        let now = Instant::ZERO;
        let mut to_server = client.start(now).tx;
        let mut to_client = server.start(now).tx;
        for _ in 0..64 {
            if client.is_open() && server.is_open() {
                break;
            }
            let out = server.input_bytes(now, &std::mem::take(&mut to_server));
            to_client.extend(out.tx);
            let out = client.input_bytes(now, &std::mem::take(&mut to_client));
            to_server.extend(out.tx);
        }
        prop_assert!(client.is_open(), "client stuck in {:?}", client.phase());
        prop_assert!(server.is_open(), "server stuck in {:?}", server.phase());
        prop_assert_eq!(client.local_addr(), Some(addr("10.64.3.7")));
        prop_assert_eq!(client.peer_addr(), server.local_addr());
        prop_assert_eq!(server.peer_addr(), client.local_addr());
    }

    /// The bearer conserves packets: offered = served + overflow-dropped +
    /// RLC-dropped + still queued. Holds for every rate/size pattern.
    #[test]
    fn bearer_conserves_packets(
        sizes in proptest::collection::vec(16usize..1200, 1..150),
        rate in 10_000u64..2_000_000,
        bler in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let cfg = BearerConfig {
            tti: Duration::from_millis(10),
            queue_packets: 0,
            queue_bytes: 20_000,
            base_delay: Duration::from_millis(50),
            jitter: JitterModel::Uniform { max: Duration::from_millis(10) },
            bler,
            retx_delay: Duration::from_millis(40),
            max_attempts: 4,
            outage_rate_per_sec: 0.0,
            outage_min: Duration::ZERO,
            outage_max: Duration::ZERO,
        };
        let mut bearer = UmtsBearer::new(cfg);
        bearer.set_rate(Instant::ZERO, rate);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut served = 0u64;
        let mut last_delivery = Instant::ZERO;
        for (i, size) in sizes.iter().enumerate() {
            let now = Instant::from_millis(10 * (i as u64 + 1));
            let p = Packet::udp(
                PacketId(i as u64),
                Endpoint::new(addr("10.64.3.7"), 1),
                Endpoint::new(addr("192.0.2.1"), 2),
                vec![0; *size],
                now,
            );
            let _ = bearer.enqueue(now, p);
            for (at, _) in bearer.service(now, &mut rng) {
                prop_assert!(at >= now, "delivery in the past");
                prop_assert!(at >= last_delivery, "reordered delivery");
                last_delivery = at;
                served += 1;
            }
        }
        // Drain the rest.
        let mut t = Instant::from_millis(10 * (sizes.len() as u64 + 1));
        for _ in 0..10_000 {
            if bearer.backlog_packets() == 0 {
                break;
            }
            for (at, _) in bearer.service(t, &mut rng) {
                prop_assert!(at >= last_delivery);
                last_delivery = at;
                served += 1;
            }
            t += Duration::from_millis(10);
        }
        let st = bearer.stats();
        prop_assert_eq!(st.offered, sizes.len() as u64);
        prop_assert_eq!(
            st.offered,
            served + st.dropped_overflow + st.dropped_rlc + bearer.backlog_packets() as u64
        );
        prop_assert_eq!(st.served, served);
    }
}
