//! Property-style tests for the UMTS stack: framing robustness, FCS error
//! detection, negotiation convergence and bearer conservation. Inputs are
//! generated with the workspace's deterministic [`SimRng`] (the build
//! environment is offline, so no external property-testing crate is used).

use umtslab_net::link::JitterModel;
use umtslab_net::packet::{Packet, PacketId};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::bearer::{BearerConfig, BearerStats, UmtsBearer};
use umtslab_umts::ppp::frame::{encode_frame, protocol, Deframer};
use umtslab_umts::ppp::{Credentials, PppEndpoint, PppServerConfig};

/// Randomized cases per property.
const CASES: u64 = 64;

fn addr(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

fn rand_bytes(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    let len = rng.uniform_u64(min as u64, max as u64) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn rand_word(rng: &mut SimRng, alphabet: &[u8], max_len: u64) -> String {
    let len = rng.uniform_u64(1, max_len) as usize;
    (0..len)
        .map(|_| alphabet[rng.uniform_u64(0, alphabet.len() as u64 - 1) as usize] as char)
        .collect()
}

fn server_config() -> PppServerConfig {
    PppServerConfig {
        own_addr: addr("10.64.0.1"),
        assign_peer: addr("10.64.3.7"),
        dns: [addr("10.64.0.53"), addr("10.64.0.54")],
        require_pap: true,
        expected_credentials: None,
    }
}

/// Frames round-trip arbitrary payloads and protocols.
#[test]
fn frame_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x0201);
    for _ in 0..CASES {
        let payload = rand_bytes(&mut rng, 0, 1999);
        let proto = rng.next_u64() as u16;
        let encoded = encode_frame(proto, &payload);
        let mut d = Deframer::new();
        let frames = d.feed(&encoded);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].protocol, proto);
        assert_eq!(&frames[0].payload, &payload);
        assert_eq!(d.errors, 0);
    }
}

/// Frames survive arbitrary chunking of the byte stream.
#[test]
fn frame_chunking_is_transparent() {
    let mut rng = SimRng::seed_from_u64(0x0202);
    for _ in 0..CASES {
        let n_payloads = rng.uniform_u64(1, 7) as usize;
        let payloads: Vec<Vec<u8>> =
            (0..n_payloads).map(|_| rand_bytes(&mut rng, 0, 199)).collect();
        let chunk = rng.uniform_u64(1, 63) as usize;
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend(encode_frame(protocol::IPV4, p));
        }
        let mut d = Deframer::new();
        let mut frames = Vec::new();
        for c in stream.chunks(chunk) {
            frames.extend(d.feed(c));
        }
        assert_eq!(frames.len(), payloads.len());
        for (f, p) in frames.iter().zip(&payloads) {
            assert_eq!(&f.payload, p);
        }
    }
}

/// Any single-bit error inside a frame is either caught by the FCS or
/// breaks framing — never silently delivered as valid different data.
#[test]
fn fcs_catches_single_bit_errors() {
    let mut rng = SimRng::seed_from_u64(0x0203);
    for _ in 0..CASES {
        let payload = rand_bytes(&mut rng, 1, 299);
        let encoded = encode_frame(protocol::IPV4, &payload);
        // Avoid flipping the outer flags: that only truncates framing,
        // which is legitimate loss, not corruption acceptance.
        if encoded.len() <= 2 {
            continue;
        }
        let pos = 1 + rng.uniform_u64(0, encoded.len() as u64 - 3) as usize;
        let bit = rng.uniform_u64(0, 7);
        let mut damaged = encoded.clone();
        damaged[pos] ^= 1 << bit;
        let mut d = Deframer::new();
        let frames = d.feed(&damaged);
        for f in frames {
            // If a frame did come out whole, it must be byte-identical to
            // the original (the flip created an escape that decoded back).
            assert_eq!(f.payload, payload);
        }
    }
}

/// PPP sessions converge for any credentials accepted by the server and
/// any magic numbers, and both ends agree on the address pair. The phase
/// transition counter advances on both sides.
#[test]
fn ppp_negotiation_converges() {
    let mut rng = SimRng::seed_from_u64(0x0204);
    for _ in 0..CASES {
        let client_magic = rng.uniform_u64(1, u32::MAX as u64) as u32;
        let mut server_magic = rng.uniform_u64(1, u32::MAX as u64) as u32;
        if server_magic == client_magic {
            server_magic = server_magic.wrapping_add(1).max(1);
        }
        let user = rand_word(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 12);
        let pass = rand_word(&mut rng, b"abcdefghijklmnopqrstuvwxyz0123456789", 12);
        let mut client =
            PppEndpoint::client(client_magic, Some(Credentials::new(user, pass)), false);
        let mut server = PppEndpoint::server(server_magic, server_config());
        let now = Instant::ZERO;
        let mut to_server = client.start(now).tx;
        let mut to_client = server.start(now).tx;
        for _ in 0..64 {
            if client.is_open() && server.is_open() {
                break;
            }
            let out = server.input_bytes(now, &std::mem::take(&mut to_server));
            to_client.extend(out.tx);
            let out = client.input_bytes(now, &std::mem::take(&mut to_client));
            to_server.extend(out.tx);
        }
        assert!(client.is_open(), "client stuck in {:?}", client.phase());
        assert!(server.is_open(), "server stuck in {:?}", server.phase());
        assert_eq!(client.local_addr(), Some(addr("10.64.3.7")));
        assert_eq!(client.peer_addr(), server.local_addr());
        assert_eq!(server.peer_addr(), client.local_addr());
        // Dead → Establish → Authenticate → Network → Open is at least
        // four observable phase changes on each side.
        assert!(client.phase_transitions() >= 4, "client {:?}", client.phase_transitions());
        assert!(server.phase_transitions() >= 3, "server {:?}", server.phase_transitions());
    }
}

/// The bearer conserves packets: offered = served + overflow-dropped +
/// RLC-dropped + still queued. Holds for every rate/size pattern.
#[test]
fn bearer_conserves_packets() {
    let mut rng = SimRng::seed_from_u64(0x0205);
    for _ in 0..48 {
        let n = rng.uniform_u64(1, 149) as usize;
        let sizes: Vec<usize> = (0..n).map(|_| rng.uniform_u64(16, 1199) as usize).collect();
        let rate = rng.uniform_u64(10_000, 1_999_999);
        let bler = rng.uniform(0.0, 0.5);
        let cfg = BearerConfig {
            tti: Duration::from_millis(10),
            queue_packets: 0,
            queue_bytes: 20_000,
            base_delay: Duration::from_millis(50),
            jitter: JitterModel::Uniform { max: Duration::from_millis(10) },
            bler,
            retx_delay: Duration::from_millis(40),
            max_attempts: 4,
            outage_rate_per_sec: 0.0,
            outage_min: Duration::ZERO,
            outage_max: Duration::ZERO,
        };
        let mut bearer = UmtsBearer::new(cfg);
        bearer.set_rate(Instant::ZERO, rate);
        let mut brng = SimRng::seed_from_u64(rng.next_u64());
        let mut served = 0u64;
        let mut last_delivery = Instant::ZERO;
        for (i, size) in sizes.iter().enumerate() {
            let now = Instant::from_millis(10 * (i as u64 + 1));
            let p = Packet::udp(
                PacketId(i as u64),
                Endpoint::new(addr("10.64.3.7"), 1),
                Endpoint::new(addr("192.0.2.1"), 2),
                vec![0; *size],
                now,
            );
            let _ = bearer.enqueue(now, p);
            for (at, _) in bearer.service(now, &mut brng) {
                assert!(at >= now, "delivery in the past");
                assert!(at >= last_delivery, "reordered delivery");
                last_delivery = at;
                served += 1;
            }
        }
        // Drain the rest.
        let mut t = Instant::from_millis(10 * (sizes.len() as u64 + 1));
        for _ in 0..10_000 {
            if bearer.backlog_packets() == 0 {
                break;
            }
            for (at, _) in bearer.service(t, &mut brng) {
                assert!(at >= last_delivery);
                last_delivery = at;
                served += 1;
            }
            t += Duration::from_millis(10);
        }
        let st = bearer.stats();
        assert_eq!(st.offered, sizes.len() as u64);
        assert_eq!(
            st.offered,
            served + st.dropped_overflow + st.dropped_rlc + bearer.backlog_packets() as u64
        );
        assert_eq!(st.served, served);
    }
}

/// `BearerStats::absorb` is an exact field-wise sum.
#[test]
fn bearer_stats_absorb_is_fieldwise_sum() {
    let a = BearerStats {
        offered: 10,
        served: 7,
        dropped_overflow: 2,
        dropped_rlc: 1,
        retransmissions: 5,
        outages: 3,
    };
    let b = BearerStats {
        offered: 4,
        served: 4,
        dropped_overflow: 0,
        dropped_rlc: 0,
        retransmissions: 1,
        outages: 0,
    };
    let mut total = a;
    total.absorb(b);
    assert_eq!(
        total,
        BearerStats {
            offered: 14,
            served: 11,
            dropped_overflow: 2,
            dropped_rlc: 1,
            retransmissions: 6,
            outages: 3,
        }
    );
}
