//! Operator network profiles, address pools and the GGSN firewall.
//!
//! The paper uses two UMTS networks: a private Alcatel-Lucent micro-cell
//! (3G Reality Center, Vimercate) and a commercial Italian operator. Both
//! are modeled as [`OperatorProfile`]s differing in latency, bearer
//! configuration and firewall policy. The commercial profile blocks
//! unsolicited inbound traffic — the reason the paper keeps the control
//! plane (ssh) on the wired interface — via a connection-tracking
//! [`Conntrack`] table at the GGSN.

use std::collections::HashMap;

use umtslab_net::link::JitterModel;
use umtslab_net::packet::Packet;
use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr};
use umtslab_sim::time::{Duration, Instant};

use crate::at::NetworkSignal;
use crate::bearer::BearerConfig;
use crate::ppp::Credentials;
use crate::rrc::RrcConfig;

/// Registry keys of the built-in operator presets, in
/// [`OperatorProfile::by_preset`] order. Declarative experiment packs
/// (`umtslab-pack`) reference operators by these names.
pub const OPERATOR_PRESETS: [&str; 3] = ["commercial_italy", "private_microcell", "gprs_fallback"];

/// Everything that characterizes one operator's network.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Display name (what `AT+COPS?` reports).
    pub name: String,
    /// The APN subscribers must configure.
    pub apn: String,
    /// Time for a powered-on modem to register.
    pub registration_delay: Duration,
    /// Time from `ATD` to `CONNECT`.
    pub dial_delay: Duration,
    /// The GGSN demands PAP authentication.
    pub require_pap: bool,
    /// Expected credentials (`None` = accept anything, the common
    /// commercial-APN policy).
    pub expected_credentials: Option<Credentials>,
    /// The GGSN-side PPP address.
    pub ggsn_addr: Ipv4Address,
    /// Pool from which subscriber addresses are assigned.
    pub pool: Ipv4Cidr,
    /// DNS servers offered via IPCP.
    pub dns: [Ipv4Address; 2],
    /// RRC behaviour.
    pub rrc: RrcConfig,
    /// Uplink bearer parameters.
    pub uplink: BearerConfig,
    /// Downlink bearer parameters.
    pub downlink: BearerConfig,
    /// One-way delay between the GGSN and the operator's internet edge.
    pub core_delay: Duration,
    /// One-way delay of the signaling path (PPP negotiation bytes).
    pub signaling_delay: Duration,
    /// Whether unsolicited inbound traffic is dropped.
    pub inbound_firewall: bool,
}

impl OperatorProfile {
    /// The commercial Italian operator of the paper's Section 3
    /// experiments: moderate latency, R99-class uplink that upgrades under
    /// sustained load, deep buffers, inbound firewall.
    pub fn commercial_italy() -> OperatorProfile {
        OperatorProfile {
            name: "IT Mobile".to_string(),
            apn: "internet.it".to_string(),
            registration_delay: Duration::from_millis(2_500),
            dial_delay: Duration::from_millis(3_200),
            require_pap: true,
            expected_credentials: None, // commercial APNs accept anything
            ggsn_addr: Ipv4Address::new(10, 64, 0, 1),
            pool: Ipv4Cidr::new(Ipv4Address::new(10, 64, 128, 0), 17),
            dns: [Ipv4Address::new(10, 64, 0, 53), Ipv4Address::new(10, 64, 0, 54)],
            rrc: RrcConfig::default(),
            uplink: BearerConfig {
                // Calibrated so the saturated RTT peaks in the paper's
                // few-second range: ≈44 kB draining at the initial
                // ~16 kB/s payload rate gives ~3 s of queueing delay.
                queue_bytes: 44_000,
                ..BearerConfig::typical()
            },
            downlink: BearerConfig {
                queue_bytes: 300_000,
                base_delay: Duration::from_millis(55),
                jitter: JitterModel::Normal {
                    mean: Duration::from_millis(3),
                    std: Duration::from_millis(6),
                },
                outage_rate_per_sec: 0.2,
                outage_min: Duration::from_millis(100),
                outage_max: Duration::from_millis(500),
                ..BearerConfig::typical()
            },
            core_delay: Duration::from_millis(15),
            signaling_delay: Duration::from_millis(90),
            inbound_firewall: true,
        }
    }

    /// The Alcatel-Lucent private micro-cell: lower latency and cleaner
    /// radio (the terminal sits meters from the antenna), no inbound
    /// firewall, fixed credentials.
    pub fn private_microcell() -> OperatorProfile {
        OperatorProfile {
            name: "3G Reality Center".to_string(),
            apn: "onelab.private".to_string(),
            registration_delay: Duration::from_millis(1_200),
            dial_delay: Duration::from_millis(1_800),
            require_pap: true,
            expected_credentials: Some(Credentials::new("onelab", "onelab")),
            ggsn_addr: Ipv4Address::new(10, 70, 0, 1),
            pool: Ipv4Cidr::new(Ipv4Address::new(10, 70, 8, 0), 21),
            dns: [Ipv4Address::new(10, 70, 0, 53), Ipv4Address::new(10, 70, 0, 54)],
            rrc: RrcConfig { promotion_delay: Duration::from_millis(900), ..RrcConfig::default() },
            uplink: BearerConfig {
                queue_bytes: 64_000,
                base_delay: Duration::from_millis(45),
                bler: 0.03,
                jitter: JitterModel::Normal {
                    mean: Duration::from_millis(2),
                    std: Duration::from_millis(4),
                },
                outage_rate_per_sec: 0.08,
                outage_min: Duration::from_millis(50),
                outage_max: Duration::from_millis(200),
                ..BearerConfig::typical()
            },
            downlink: BearerConfig {
                queue_bytes: 300_000,
                base_delay: Duration::from_millis(40),
                bler: 0.02,
                jitter: JitterModel::Normal {
                    mean: Duration::from_millis(2),
                    std: Duration::from_millis(3),
                },
                outage_rate_per_sec: 0.08,
                outage_min: Duration::from_millis(50),
                outage_max: Duration::from_millis(200),
                ..BearerConfig::typical()
            },
            core_delay: Duration::from_millis(5),
            signaling_delay: Duration::from_millis(60),
            inbound_firewall: false,
        }
    }

    /// A GPRS/EDGE (2.5G) fallback profile: the technology the paper's
    /// introduction contrasts UMTS against. Much slower, much higher
    /// latency, no on-demand grant upgrades — useful for heterogeneity
    /// experiments across access generations.
    pub fn gprs_fallback() -> OperatorProfile {
        let slow = crate::rrc::BearerGrant { uplink_bps: 42_000, downlink_bps: 85_000 };
        OperatorProfile {
            name: "IT Mobile GPRS".to_string(),
            apn: "internet.it".to_string(),
            registration_delay: Duration::from_millis(4_000),
            dial_delay: Duration::from_millis(5_500),
            require_pap: true,
            expected_credentials: None,
            ggsn_addr: Ipv4Address::new(10, 66, 0, 1),
            pool: Ipv4Cidr::new(Ipv4Address::new(10, 66, 128, 0), 17),
            dns: [Ipv4Address::new(10, 66, 0, 53), Ipv4Address::new(10, 66, 0, 54)],
            rrc: RrcConfig {
                fach_grant: crate::rrc::BearerGrant { uplink_bps: 16_000, downlink_bps: 16_000 },
                initial_dch: slow,
                upgraded_dch: slow, // GPRS has no on-demand upgrade
                promotion_delay: Duration::from_millis(2_500),
                ..RrcConfig::default()
            },
            uplink: BearerConfig {
                tti: Duration::from_millis(20),
                queue_packets: 0,
                queue_bytes: 30_000,
                base_delay: Duration::from_millis(280),
                jitter: JitterModel::Normal {
                    mean: Duration::from_millis(20),
                    std: Duration::from_millis(35),
                },
                bler: 0.12,
                retx_delay: Duration::from_millis(120),
                max_attempts: 5,
                outage_rate_per_sec: 0.5,
                outage_min: Duration::from_millis(200),
                outage_max: Duration::from_millis(1_200),
            },
            downlink: BearerConfig {
                tti: Duration::from_millis(20),
                queue_packets: 0,
                queue_bytes: 60_000,
                base_delay: Duration::from_millis(250),
                jitter: JitterModel::Normal {
                    mean: Duration::from_millis(15),
                    std: Duration::from_millis(30),
                },
                bler: 0.10,
                retx_delay: Duration::from_millis(120),
                max_attempts: 5,
                outage_rate_per_sec: 0.4,
                outage_min: Duration::from_millis(200),
                outage_max: Duration::from_millis(1_000),
            },
            core_delay: Duration::from_millis(25),
            signaling_delay: Duration::from_millis(250),
            inbound_firewall: true,
        }
    }

    /// Looks up a built-in profile by its registry key (the names
    /// declarative experiment packs use; see [`OPERATOR_PRESETS`]).
    pub fn by_preset(key: &str) -> Option<OperatorProfile> {
        match key {
            "commercial_italy" => Some(OperatorProfile::commercial_italy()),
            "private_microcell" => Some(OperatorProfile::private_microcell()),
            "gprs_fallback" => Some(OperatorProfile::gprs_fallback()),
            _ => None,
        }
    }

    /// What the modem sees of this operator.
    pub fn network_signal(&self) -> NetworkSignal {
        NetworkSignal {
            operator_name: self.name.clone(),
            apn: self.apn.clone(),
            registration_delay: self.registration_delay,
            registration_denied: false,
            dial_delay: self.dial_delay,
            dial_refused: false,
            sim_pin_locked: false,
        }
    }
}

/// Assigns subscriber addresses from the operator pool.
#[derive(Debug)]
pub struct AddressPool {
    pool: Ipv4Cidr,
    next_offset: u32,
    released: Vec<Ipv4Address>,
}

impl AddressPool {
    /// Creates a pool over `cidr`; `.0` and `.1` offsets are reserved for
    /// network/gateway use.
    pub fn new(cidr: Ipv4Cidr) -> AddressPool {
        AddressPool { pool: cidr, next_offset: 2, released: Vec::new() }
    }

    /// Number of assignable addresses.
    pub fn capacity(&self) -> u32 {
        let size = 1u64 << (32 - self.pool.prefix_len() as u64);
        (size.saturating_sub(3)) as u32 // network, gateway, broadcast
    }

    /// Allocates an address, preferring recently released ones.
    pub fn allocate(&mut self) -> Option<Ipv4Address> {
        if let Some(a) = self.released.pop() {
            return Some(a);
        }
        let size = 1u64 << (32 - self.pool.prefix_len() as u64);
        if u64::from(self.next_offset) >= size - 1 {
            return None; // keep broadcast free
        }
        let addr = Ipv4Address::from_u32(self.pool.address().to_u32() + self.next_offset);
        self.next_offset += 1;
        Some(addr)
    }

    /// Returns an address to the pool.
    pub fn release(&mut self, addr: Ipv4Address) {
        if self.pool.contains(addr) {
            self.released.push(addr);
        }
    }
}

/// Stateful inbound filter at the GGSN: only traffic belonging to a flow
/// initiated from the subscriber side is admitted.
#[derive(Debug)]
pub struct Conntrack {
    /// Flow table keyed `(subscriber endpoint, remote endpoint)` with the
    /// last outbound activity.
    // lint:allow(D1) per-packet conntrack lookups; expiry removes by probed key, never by iteration
    flows: HashMap<(Endpoint, Endpoint), Instant>,
    /// Idle timeout after which a flow entry dies.
    timeout: Duration,
}

impl Conntrack {
    /// Creates a table with the given idle timeout.
    pub fn new(timeout: Duration) -> Conntrack {
        // lint:allow(D1) constructing the lookup-only flow table justified above
        Conntrack { flows: HashMap::new(), timeout }
    }

    /// Records an outbound (subscriber → internet) packet.
    pub fn note_outbound(&mut self, packet: &Packet, now: Instant) {
        self.flows.insert((packet.src, packet.dst), now);
    }

    /// Decides whether an inbound (internet → subscriber) packet belongs
    /// to an established flow.
    pub fn allow_inbound(&mut self, packet: &Packet, now: Instant) -> bool {
        // The reverse key: the subscriber was the source, the remote host
        // the destination.
        let key = (packet.dst, packet.src);
        match self.flows.get(&key) {
            Some(&last) if now.saturating_duration_since(last) <= self.timeout => true,
            Some(_) => {
                self.flows.remove(&key);
                false
            }
            None => false,
        }
    }

    /// Number of live flow entries (stale ones included until touched).
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Drops every entry (session teardown).
    pub fn clear(&mut self) {
        self.flows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::packet::PacketId;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn pkt(src: Endpoint, dst: Endpoint) -> Packet {
        Packet::udp(PacketId(0), src, dst, vec![], Instant::ZERO)
    }

    #[test]
    fn profiles_are_distinct_and_plausible() {
        let c = OperatorProfile::commercial_italy();
        let p = OperatorProfile::private_microcell();
        assert_ne!(c.apn, p.apn);
        assert!(c.inbound_firewall);
        assert!(!p.inbound_firewall);
        assert!(p.uplink.base_delay < c.uplink.base_delay);
        assert!(c.expected_credentials.is_none());
        assert!(p.expected_credentials.is_some());
        // Both pools are private space and exclude the GGSN address.
        assert!(c.pool.address().is_private());
        assert!(!c.pool.contains(c.ggsn_addr));
        assert!(!p.pool.contains(p.ggsn_addr));
    }

    #[test]
    fn gprs_profile_is_strictly_slower() {
        let umts = OperatorProfile::commercial_italy();
        let gprs = OperatorProfile::gprs_fallback();
        assert!(gprs.rrc.initial_dch.uplink_bps < umts.rrc.initial_dch.uplink_bps / 3);
        assert!(gprs.uplink.base_delay > umts.uplink.base_delay * 3);
        assert!(gprs.registration_delay > umts.registration_delay);
        // No on-demand upgrade on 2.5G.
        assert_eq!(gprs.rrc.initial_dch, gprs.rrc.upgraded_dch);
        // Pools of the three presets never overlap.
        let micro = OperatorProfile::private_microcell();
        for (a, b) in [(&umts, &gprs), (&umts, &micro), (&gprs, &micro)] {
            assert!(!a.pool.contains_prefix(&b.pool) && !b.pool.contains_prefix(&a.pool));
        }
    }

    #[test]
    fn network_signal_reflects_profile() {
        let c = OperatorProfile::commercial_italy();
        let s = c.network_signal();
        assert_eq!(s.apn, c.apn);
        assert_eq!(s.registration_delay, c.registration_delay);
        assert!(!s.registration_denied);
    }

    #[test]
    fn pool_allocates_distinct_addresses() {
        let mut pool = AddressPool::new("10.64.128.0/28".parse().unwrap());
        let mut seen = std::collections::HashSet::new();
        while let Some(a) = pool.allocate() {
            assert!(seen.insert(a), "duplicate address {a}");
            assert!(pool.pool.contains(a));
        }
        // /28 = 16 addresses minus network/gateway/broadcast = 13.
        assert_eq!(seen.len(), 13);
    }

    #[test]
    fn pool_reuses_released_addresses() {
        let mut pool = AddressPool::new("10.64.128.0/30".parse().unwrap());
        let a1 = pool.allocate().unwrap();
        assert_eq!(pool.allocate(), None); // /30 has a single usable host
        pool.release(a1);
        assert_eq!(pool.allocate(), Some(a1));
    }

    #[test]
    fn pool_ignores_foreign_releases() {
        let mut pool = AddressPool::new("10.64.128.0/30".parse().unwrap());
        pool.release(a("192.168.1.1"));
        let first = pool.allocate().unwrap();
        assert!(pool.pool.contains(first));
    }

    #[test]
    fn conntrack_blocks_unsolicited_inbound() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 22);
        // ssh attempt from outside, as the paper describes: dropped.
        let inbound = pkt(remote, subscriber);
        assert!(!ct.allow_inbound(&inbound, Instant::ZERO));
    }

    #[test]
    fn conntrack_allows_replies_to_outbound_flows() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 9001);
        ct.note_outbound(&pkt(subscriber, remote), Instant::ZERO);
        let reply = pkt(remote, subscriber);
        assert!(ct.allow_inbound(&reply, Instant::from_secs(1)));
    }

    #[test]
    fn conntrack_entries_expire() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 9001);
        ct.note_outbound(&pkt(subscriber, remote), Instant::ZERO);
        let reply = pkt(remote, subscriber);
        assert!(!ct.allow_inbound(&reply, Instant::from_secs(31)));
        // The stale entry was garbage-collected.
        assert!(ct.is_empty());
    }

    #[test]
    fn conntrack_refreshes_on_outbound_activity() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 9001);
        ct.note_outbound(&pkt(subscriber, remote), Instant::ZERO);
        ct.note_outbound(&pkt(subscriber, remote), Instant::from_secs(25));
        let reply = pkt(remote, subscriber);
        assert!(ct.allow_inbound(&reply, Instant::from_secs(50)));
    }

    #[test]
    fn conntrack_is_per_flow_not_per_host() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 9001);
        ct.note_outbound(&pkt(subscriber, remote), Instant::ZERO);
        // Same remote host, different port: still blocked.
        let other_port = pkt(Endpoint::new(a("192.0.2.10"), 22), subscriber);
        assert!(!ct.allow_inbound(&other_port, Instant::from_secs(1)));
    }

    #[test]
    fn conntrack_clear_drops_everything() {
        let mut ct = Conntrack::new(Duration::from_secs(30));
        let subscriber = Endpoint::new(a("10.64.128.2"), 9000);
        let remote = Endpoint::new(a("192.0.2.10"), 9001);
        ct.note_outbound(&pkt(subscriber, remote), Instant::ZERO);
        ct.clear();
        assert!(!ct.allow_inbound(&pkt(remote, subscriber), Instant::from_secs(1)));
    }
}
