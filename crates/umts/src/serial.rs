//! A simulated serial line between the host and the 3G modem.
//!
//! The real deployment talks to the Option Globetrotter / Huawei E620 cards
//! over a serial TTY (via the `nozomi` / `usbserial` kernel modules). Here
//! the line is an in-memory duplex byte channel with baud-rate pacing: a
//! byte written at `t` becomes readable at the far end no earlier than
//! `t + 10/baud` seconds (8N1 framing: 8 data bits + start + stop), and
//! writes serialize behind each other exactly like a UART shift register.

use std::collections::VecDeque;

use umtslab_sim::time::{Duration, Instant};

/// One direction of the serial line.
#[derive(Debug)]
struct Channel {
    /// Bytes in flight or ready: `(readable_at, byte)`.
    bytes: VecDeque<(Instant, u8)>,
    /// When the shift register frees up.
    next_free: Instant,
}

impl Channel {
    fn new() -> Channel {
        Channel { bytes: VecDeque::new(), next_free: Instant::ZERO }
    }

    fn write(&mut self, now: Instant, data: &[u8], per_byte: Duration) {
        let mut t = self.next_free.max(now);
        for &b in data {
            t += per_byte;
            self.bytes.push_back((t, b));
        }
        self.next_free = t;
    }

    fn read(&mut self, now: Instant) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(&(at, b)) = self.bytes.front() {
            if at <= now {
                out.push(b);
                self.bytes.pop_front();
            } else {
                break;
            }
        }
        out
    }

    fn next_readable(&self) -> Option<Instant> {
        self.bytes.front().map(|&(at, _)| at)
    }
}

/// A full-duplex serial line with two logical ends: the *host* (DTE) and
/// the *modem* (DCE).
#[derive(Debug)]
pub struct SerialLine {
    per_byte: Duration,
    host_to_modem: Channel,
    modem_to_host: Channel,
}

impl SerialLine {
    /// Creates a line running at `baud` bits per second (8N1: 10 baud
    /// periods per byte). A zero baud rate means instantaneous transfer.
    pub fn new(baud: u64) -> SerialLine {
        let per_byte = if baud == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(10_000_000u64.div_ceil(baud))
        };
        SerialLine { per_byte, host_to_modem: Channel::new(), modem_to_host: Channel::new() }
    }

    /// The transfer time of a single byte.
    pub fn per_byte(&self) -> Duration {
        self.per_byte
    }

    /// Host writes bytes toward the modem.
    pub fn host_write(&mut self, now: Instant, data: &[u8]) {
        self.host_to_modem.write(now, data, self.per_byte);
    }

    /// Modem writes bytes toward the host.
    pub fn modem_write(&mut self, now: Instant, data: &[u8]) {
        self.modem_to_host.write(now, data, self.per_byte);
    }

    /// Host reads everything that has arrived by `now`.
    pub fn host_read(&mut self, now: Instant) -> Vec<u8> {
        self.modem_to_host.read(now)
    }

    /// Modem reads everything that has arrived by `now`.
    pub fn modem_read(&mut self, now: Instant) -> Vec<u8> {
        self.host_to_modem.read(now)
    }

    /// The earliest instant at which either end has new data to read.
    pub fn next_activity(&self) -> Option<Instant> {
        match (self.host_to_modem.next_readable(), self.modem_to_host.next_readable()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

/// Accumulates raw serial bytes into CR/LF-terminated text lines, the unit
/// in which AT commands and responses travel.
#[derive(Debug, Default)]
pub struct LineAssembler {
    buf: Vec<u8>,
}

impl LineAssembler {
    /// Creates an empty assembler.
    pub fn new() -> LineAssembler {
        LineAssembler::default()
    }

    /// Feeds bytes; returns every complete line (terminator stripped,
    /// empty lines skipped).
    pub fn feed(&mut self, data: &[u8]) -> Vec<String> {
        let mut lines = Vec::new();
        for &b in data {
            if b == b'\r' || b == b'\n' {
                if !self.buf.is_empty() {
                    lines.push(String::from_utf8_lossy(&self.buf).into_owned());
                    self.buf.clear();
                }
            } else {
                self.buf.push(b);
            }
        }
        lines
    }

    /// Bytes buffered awaiting a terminator.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantaneous_line_transfers_immediately() {
        let mut line = SerialLine::new(0);
        line.host_write(Instant::ZERO, b"AT\r");
        assert_eq!(line.modem_read(Instant::ZERO), b"AT\r");
    }

    #[test]
    fn baud_rate_paces_bytes() {
        // 9600 baud: one byte per ~1042 us.
        let mut line = SerialLine::new(9600);
        line.host_write(Instant::ZERO, b"AB");
        assert!(line.modem_read(Instant::from_micros(1000)).is_empty());
        assert_eq!(line.modem_read(Instant::from_micros(1042)), b"A");
        assert_eq!(line.modem_read(Instant::from_micros(2084)), b"B");
    }

    #[test]
    fn writes_serialize_behind_each_other() {
        let mut line = SerialLine::new(9600);
        line.host_write(Instant::ZERO, b"A");
        line.host_write(Instant::ZERO, b"B"); // queues behind "A"
        let all = line.modem_read(Instant::from_micros(2084));
        assert_eq!(all, b"AB");
    }

    #[test]
    fn directions_are_independent() {
        let mut line = SerialLine::new(9600);
        line.host_write(Instant::ZERO, b"X");
        line.modem_write(Instant::ZERO, b"Y");
        assert_eq!(line.modem_read(Instant::from_millis(2)), b"X");
        assert_eq!(line.host_read(Instant::from_millis(2)), b"Y");
    }

    #[test]
    fn next_activity_reports_earliest_byte() {
        let mut line = SerialLine::new(9600);
        assert_eq!(line.next_activity(), None);
        line.host_write(Instant::ZERO, b"A");
        let at = line.next_activity().unwrap();
        assert_eq!(at, Instant::from_micros(1042));
        line.modem_read(at);
        assert_eq!(line.next_activity(), None);
    }

    #[test]
    fn line_assembler_splits_on_cr_and_lf() {
        let mut asm = LineAssembler::new();
        assert!(asm.feed(b"AT+CRE").is_empty());
        assert_eq!(asm.pending(), 6);
        let lines = asm.feed(b"G?\r\nOK\r");
        assert_eq!(lines, vec!["AT+CREG?".to_string(), "OK".to_string()]);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn line_assembler_skips_blank_lines() {
        let mut asm = LineAssembler::new();
        let lines = asm.feed(b"\r\n\r\nOK\r\n\r\n");
        assert_eq!(lines, vec!["OK".to_string()]);
    }

    #[test]
    fn idle_gap_then_write_transfers_from_now() {
        let mut line = SerialLine::new(9600);
        line.host_write(Instant::ZERO, b"A");
        let _ = line.modem_read(Instant::from_secs(1));
        line.host_write(Instant::from_secs(1), b"B");
        assert!(line.modem_read(Instant::from_secs(1)).is_empty());
        assert_eq!(line.modem_read(Instant::from_secs(1) + Duration::from_micros(1042)), b"B");
    }
}
