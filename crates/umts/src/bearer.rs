//! The radio bearer: TTI-paced packet service over the air interface.
//!
//! One [`UmtsBearer`] models one direction (uplink or downlink) of the
//! radio access network between the terminal and the GGSN. Packets enter a
//! deep drop-tail buffer (the operator-side queue whose depth produces the
//! multi-second RTTs the paper measures under saturation) and are served in
//! TTI-sized installments at the rate granted by RRC. Each served packet
//! pays the base radio latency, a jitter draw, and — with probability equal
//! to the block error rate — one or more RLC retransmission penalties,
//! which is what makes the UMTS QoS time series visibly noisier than the
//! wired path even when unsaturated (Figures 1–3).

use umtslab_net::link::JitterModel;
use umtslab_net::packet::Packet;
use umtslab_net::queue::{PacketQueue, QueueStats};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

/// Static parameters of one bearer direction.
#[derive(Debug, Clone)]
pub struct BearerConfig {
    /// Transmission time interval: the scheduling granularity.
    pub tti: Duration,
    /// Buffer limit in packets (`0` = unlimited).
    pub queue_packets: usize,
    /// Buffer limit in bytes (`0` = unlimited).
    pub queue_bytes: usize,
    /// Fixed radio latency (interleaving, RLC, Iub backhaul).
    pub base_delay: Duration,
    /// Per-packet jitter on top of the base delay.
    pub jitter: JitterModel,
    /// Block error rate: probability a transmission attempt fails and is
    /// retransmitted by RLC.
    pub bler: f64,
    /// Extra delay contributed by each retransmission attempt.
    pub retx_delay: Duration,
    /// Attempts before RLC gives up and the packet is lost.
    pub max_attempts: u32,
    /// Mean rate of radio outages (deep fades / cell reselections) while
    /// the bearer is active, per second of service time. Zero disables.
    pub outage_rate_per_sec: f64,
    /// Minimum outage duration.
    pub outage_min: Duration,
    /// Maximum outage duration.
    pub outage_max: Duration,
}

impl BearerConfig {
    /// A plausible R99/HSDPA-era configuration used by the operator
    /// presets.
    pub fn typical() -> BearerConfig {
        BearerConfig {
            tti: Duration::from_millis(10),
            queue_packets: 0,
            queue_bytes: 160_000,
            base_delay: Duration::from_millis(70),
            jitter: JitterModel::Normal {
                mean: Duration::from_millis(4),
                std: Duration::from_millis(7),
            },
            bler: 0.08,
            retx_delay: Duration::from_millis(50),
            max_attempts: 5,
            outage_rate_per_sec: 0.33,
            outage_min: Duration::from_millis(150),
            outage_max: Duration::from_millis(900),
        }
    }
}

/// Lifetime counters of a bearer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BearerStats {
    /// Packets offered to the bearer.
    pub offered: u64,
    /// Packets served over the air.
    pub served: u64,
    /// Drops from buffer overflow.
    pub dropped_overflow: u64,
    /// Drops after exhausting RLC retransmissions.
    pub dropped_rlc: u64,
    /// Total retransmission attempts.
    pub retransmissions: u64,
    /// Radio outages experienced.
    pub outages: u64,
}

impl BearerStats {
    /// Folds another counter set into this one, field by field.
    ///
    /// Used by the metrics registry to aggregate the uplink and downlink
    /// bearers of every attachment into a per-experiment total.
    pub fn absorb(&mut self, other: BearerStats) {
        self.offered += other.offered;
        self.served += other.served;
        self.dropped_overflow += other.dropped_overflow;
        self.dropped_rlc += other.dropped_rlc;
        self.retransmissions += other.retransmissions;
        self.outages += other.outages;
    }
}

/// One direction of the radio access network.
#[derive(Debug)]
pub struct UmtsBearer {
    config: BearerConfig,
    queue: PacketQueue,
    /// Current service rate (bits per second); `0` = no grant, nothing is
    /// served (Idle / promotion in progress).
    rate_bps: u64,
    /// Accumulated service credit in bytes (at most one TTI's worth is
    /// banked, like a real scheduler).
    credit_bytes: u64,
    /// Last instant credit was accrued.
    last_service: Instant,
    /// FIFO clamp so jitter/retransmissions never reorder.
    last_delivery: Instant,
    /// The radio is in a deep fade until this instant.
    outage_until: Option<Instant>,
    stats: BearerStats,
}

impl UmtsBearer {
    /// Creates a bearer with no grant.
    pub fn new(config: BearerConfig) -> UmtsBearer {
        let queue = PacketQueue::new(config.queue_packets, config.queue_bytes);
        UmtsBearer {
            config,
            queue,
            rate_bps: 0,
            credit_bytes: 0,
            last_service: Instant::ZERO,
            last_delivery: Instant::ZERO,
            outage_until: None,
            stats: BearerStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &BearerConfig {
        &self.config
    }

    /// Current grant.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Applies a new RRC grant, effective from the next service instant.
    pub fn set_rate(&mut self, now: Instant, rate_bps: u64) {
        // Settle credit at the old rate first.
        self.accrue(now);
        self.rate_bps = rate_bps;
    }

    /// Bytes waiting in the buffer.
    pub fn backlog_bytes(&self) -> usize {
        self.queue.bytes()
    }

    /// Packets waiting in the buffer.
    pub fn backlog_packets(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BearerStats {
        self.stats
    }

    /// Queue counters (enqueued/dequeued/dropped).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Offers a packet at `now`. On buffer overflow the packet is
    /// returned.
    pub fn enqueue(&mut self, now: Instant, packet: Packet) -> Result<(), Packet> {
        self.stats.offered += 1;
        if self.queue.is_empty() && now > self.last_service {
            // The bearer was idle: service resumes from now — idle time
            // must not be converted into retroactive credit.
            self.last_service = now;
        }
        self.queue.enqueue(packet).map_err(|p| {
            self.stats.dropped_overflow += 1;
            p
        })
    }

    /// Drops everything queued (session teardown).
    pub fn flush(&mut self) {
        self.queue.clear();
        self.credit_bytes = 0;
    }

    /// When the bearer next wants servicing: one TTI after the last
    /// service while a backlog exists.
    pub fn next_service(&self) -> Option<Instant> {
        if self.queue.is_empty() || self.rate_bps == 0 {
            None
        } else {
            let next = self.last_service + self.config.tti;
            Some(match self.outage_until {
                Some(until) => next.max(until),
                None => next,
            })
        }
    }

    /// Serves up to one accrual of credit at `now`, returning the packets
    /// that complete the air interface and their delivery instants (at the
    /// far end of the radio leg).
    pub fn service(&mut self, now: Instant, rng: &mut SimRng) -> Vec<(Instant, Packet)> {
        // A fade in progress blocks all service; time spent in the fade
        // earns no credit.
        if let Some(until) = self.outage_until {
            if now < until {
                self.last_service = now;
                self.credit_bytes = 0;
                return Vec::new();
            }
            self.outage_until = None;
            self.last_service = now;
            self.credit_bytes = 0;
        }
        let elapsed_secs = now.saturating_duration_since(self.last_service).as_secs_f64().min(0.5);
        self.accrue(now);
        // Draw a new fade covering this service interval.
        if self.config.outage_rate_per_sec > 0.0
            && !self.queue.is_empty()
            && rng.chance(self.config.outage_rate_per_sec * elapsed_secs)
        {
            let span = self.config.outage_max.saturating_sub(self.config.outage_min).total_micros();
            let dur =
                self.config.outage_min + Duration::from_micros(rng.uniform_u64(0, span.max(1)));
            self.outage_until = Some(now + dur);
            self.stats.outages += 1;
            self.credit_bytes = 0;
            return Vec::new();
        }
        let mut out = Vec::new();
        while let Some(front) = self.queue.peek() {
            let len = front.wire_len() as u64;
            if len > self.credit_bytes {
                break;
            }
            self.credit_bytes -= len;
            let packet = self.queue.dequeue().expect("peeked packet dequeues");

            // RLC: geometric number of failed attempts, capped.
            let mut attempts = 1u32;
            while attempts < self.config.max_attempts && rng.chance(self.config.bler) {
                attempts += 1;
            }
            if attempts >= self.config.max_attempts && rng.chance(self.config.bler) {
                // Final attempt also failed: RLC gives up.
                self.stats.dropped_rlc += 1;
                self.stats.retransmissions += u64::from(attempts - 1);
                continue;
            }
            self.stats.retransmissions += u64::from(attempts - 1);
            let retx_penalty = self.config.retx_delay * u64::from(attempts - 1);
            let jitter = self.config.jitter.sample(rng);
            let mut deliver = now + self.config.base_delay + jitter + retx_penalty;
            // In-order delivery: RLC re-sequences before handing up.
            if deliver < self.last_delivery {
                deliver = self.last_delivery;
            }
            self.last_delivery = deliver;
            self.stats.served += 1;
            out.push((deliver, packet));
        }
        if self.queue.is_empty() {
            // Only idle leftovers are clamped: discarding credit while a
            // backlog stands would under-serve the grant.
            self.clamp_idle_credit();
        }
        out
    }

    fn accrue(&mut self, now: Instant) {
        if now <= self.last_service {
            return;
        }
        let elapsed = now.duration_since(self.last_service);
        self.last_service = now;
        if self.rate_bps == 0 {
            self.credit_bytes = 0;
            return;
        }
        // Guard against pathological call patterns (service invoked long
        // after the last accrual with a standing backlog): never convert
        // more than two TTIs of wall time into credit at once. On the
        // normal TTI cadence `elapsed == tti`, so this is inert.
        let elapsed = elapsed.min(self.config.tti * 2);
        let add = (self.rate_bps as u128 * elapsed.total_micros() as u128 / 8_000_000) as u64;
        // While backlogged, credit accumulates unclamped: it will be spent
        // by the serve loop that follows, and clamping it would silently
        // discard capacity whenever the head-of-line packet spans multiple
        // TTIs. Idle credit is clamped at the end of `service` instead
        // (and `enqueue` resets the clock after idle gaps).
        self.credit_bytes += add;
    }

    /// Caps banked credit so an idle bearer cannot burst later: at most
    /// ~two TTIs worth, but never less than one head-of-line packet.
    fn clamp_idle_credit(&mut self) {
        let tti_cap =
            (self.rate_bps as u128 * self.config.tti.total_micros() as u128 * 2 / 8_000_000) as u64;
        let head = self.queue.peek().map_or(0, |p| p.wire_len() as u64);
        let cap = tti_cap.max(head);
        self.credit_bytes = self.credit_bytes.min(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::packet::PacketId;
    use umtslab_net::wire::{Endpoint, Ipv4Address};

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet::udp(
            PacketId(id),
            Endpoint::new(Ipv4Address::new(10, 64, 3, 7), 9000),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 1), 9001),
            vec![0; payload],
            Instant::ZERO,
        )
    }

    fn clean_config() -> BearerConfig {
        BearerConfig {
            tti: Duration::from_millis(10),
            queue_packets: 0,
            queue_bytes: 160_000,
            base_delay: Duration::from_millis(70),
            jitter: JitterModel::None,
            bler: 0.0,
            retx_delay: Duration::from_millis(50),
            max_attempts: 5,
            outage_rate_per_sec: 0.0,
            outage_min: Duration::ZERO,
            outage_max: Duration::ZERO,
        }
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(7)
    }

    #[test]
    fn no_grant_means_no_service() {
        let mut b = UmtsBearer::new(clean_config());
        b.enqueue(Instant::ZERO, pkt(0, 100)).unwrap();
        assert_eq!(b.next_service(), None);
        assert!(b.service(Instant::from_secs(1), &mut rng()).is_empty());
        assert_eq!(b.backlog_packets(), 1, "packet waits for a grant");
    }

    #[test]
    fn granted_bearer_serves_at_rate() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 160_000); // 20 kB/s = 200 B per 10 ms TTI
                                            // A 128-wire-byte packet fits in one TTI's credit.
        b.enqueue(Instant::ZERO, pkt(0, 100)).unwrap();
        let served = b.service(Instant::from_millis(10), &mut rng());
        assert_eq!(served.len(), 1);
        // Delivery = service time + base delay.
        assert_eq!(served[0].0, Instant::from_millis(80));
    }

    #[test]
    fn credit_limits_per_tti_throughput() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 160_000); // 200 B per TTI
        for i in 0..10 {
            b.enqueue(Instant::ZERO, pkt(i, 100)).unwrap(); // 128 B wire each
        }
        // One TTI of credit serves one packet (200 B credit, 128 B used,
        // 72 left < 128).
        let served = b.service(Instant::from_millis(10), &mut rng());
        assert_eq!(served.len(), 1);
        // Next TTI: 72 + 200 = 272 → serves two.
        let served = b.service(Instant::from_millis(20), &mut rng());
        assert_eq!(served.len(), 2);
    }

    #[test]
    fn long_idle_does_not_bank_unbounded_credit() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 160_000);
        // 10 s idle, then a burst arrives: at most ~2 TTIs of credit.
        for i in 0..20 {
            b.enqueue(Instant::ZERO, pkt(i, 100)).unwrap();
        }
        let served = b.service(Instant::from_secs(10), &mut rng());
        assert!(served.len() <= 3, "served {} packets from banked credit", served.len());
    }

    #[test]
    fn sustained_throughput_matches_grant() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 400_000); // 50 kB/s
        let mut r = rng();
        let mut served_bytes = 0usize;
        // Offer 100 kB/s for 10 s; count what comes out.
        for (next_id, ms) in (0..10_000u64).step_by(10).enumerate() {
            let now = Instant::from_millis(ms);
            // 1 kB per 10 ms = 100 kB/s offered.
            let _ = b.enqueue(now, pkt(next_id as u64, 1000 - 28));
            for (_, p) in b.service(now, &mut r) {
                served_bytes += p.wire_len();
            }
        }
        let rate = served_bytes as f64 * 8.0 / 10.0; // bits per second
        assert!(
            (rate - 400_000.0).abs() < 20_000.0,
            "served rate {rate} should be close to the 400 kbps grant"
        );
    }

    #[test]
    fn overflow_drops_are_counted() {
        let mut cfg = clean_config();
        cfg.queue_bytes = 1_000;
        let mut b = UmtsBearer::new(cfg);
        let mut rejected = 0;
        for i in 0..20 {
            if b.enqueue(Instant::ZERO, pkt(i, 100)).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0);
        assert_eq!(b.stats().dropped_overflow, rejected);
        assert!(b.backlog_bytes() <= 1_000);
    }

    #[test]
    fn bler_adds_retransmission_delay() {
        let mut cfg = clean_config();
        cfg.bler = 0.5;
        let mut b = UmtsBearer::new(cfg);
        b.set_rate(Instant::ZERO, 1_000_000);
        let mut r = rng();
        let mut penalized = 0;
        for i in 0..200 {
            b.enqueue(Instant::ZERO, pkt(i, 50)).unwrap();
            let now = Instant::from_millis(10 * (i + 1));
            for (at, _) in b.service(now, &mut r) {
                let delay = at.duration_since(now);
                if delay > Duration::from_millis(70) {
                    penalized += 1;
                }
            }
        }
        assert!(penalized > 40, "with 50% BLER many packets must pay retx delay, got {penalized}");
        assert!(b.stats().retransmissions > 0);
    }

    #[test]
    fn rlc_gives_up_eventually() {
        let mut cfg = clean_config();
        cfg.bler = 0.9;
        cfg.max_attempts = 2;
        let mut b = UmtsBearer::new(cfg);
        b.set_rate(Instant::ZERO, 10_000_000);
        let mut r = rng();
        for i in 0..200 {
            b.enqueue(Instant::ZERO, pkt(i, 50)).unwrap();
        }
        let served = b.service(Instant::from_millis(100), &mut r);
        let lost = b.stats().dropped_rlc;
        assert!(lost > 0, "90% BLER with 2 attempts must lose packets");
        assert_eq!(served.len() as u64 + lost, 200);
    }

    #[test]
    fn deliveries_are_in_order() {
        let mut cfg = clean_config();
        cfg.bler = 0.3;
        cfg.jitter = JitterModel::Uniform { max: Duration::from_millis(40) };
        let mut b = UmtsBearer::new(cfg);
        b.set_rate(Instant::ZERO, 1_000_000);
        let mut r = rng();
        let mut last = Instant::ZERO;
        for i in 0..300 {
            b.enqueue(Instant::ZERO, pkt(i, 50)).unwrap();
            let now = Instant::from_millis(10 * (i + 1));
            for (at, _) in b.service(now, &mut r) {
                assert!(at >= last, "reordered delivery at packet {i}");
                last = at;
            }
        }
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 160_000);
        for i in 0..100 {
            b.enqueue(Instant::ZERO, pkt(i, 100)).unwrap();
        }
        let before = b.service(Instant::from_millis(10), &mut rng()).len();
        b.set_rate(Instant::from_millis(10), 480_000); // triple the grant
        let after = b.service(Instant::from_millis(20), &mut rng()).len();
        assert!(after > before, "after upgrade ({after}) must exceed before ({before})");
    }

    #[test]
    fn flush_empties_queue() {
        let mut b = UmtsBearer::new(clean_config());
        b.enqueue(Instant::ZERO, pkt(0, 100)).unwrap();
        b.enqueue(Instant::ZERO, pkt(1, 100)).unwrap();
        b.flush();
        assert_eq!(b.backlog_packets(), 0);
        assert_eq!(b.backlog_bytes(), 0);
    }

    #[test]
    fn next_service_only_when_backlogged_and_granted() {
        let mut b = UmtsBearer::new(clean_config());
        assert_eq!(b.next_service(), None);
        b.enqueue(Instant::ZERO, pkt(0, 100)).unwrap();
        assert_eq!(b.next_service(), None); // no grant yet
        b.set_rate(Instant::from_millis(5), 160_000);
        assert_eq!(b.next_service(), Some(Instant::from_millis(15)));
    }

    #[test]
    fn zeroing_rate_stops_service() {
        let mut b = UmtsBearer::new(clean_config());
        b.set_rate(Instant::ZERO, 160_000);
        b.enqueue(Instant::ZERO, pkt(0, 100)).unwrap();
        b.set_rate(Instant::from_millis(5), 0);
        assert!(b.service(Instant::from_millis(20), &mut rng()).is_empty());
        assert_eq!(b.next_service(), None);
    }
}
