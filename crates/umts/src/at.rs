//! The modem's AT command interpreter.
//!
//! Reproduces the dialogue that `comgt` (registration) and `wvdial`
//! (dial-up) hold with the 3G card before PPP starts. Two device profiles
//! mirror the cards the paper supports — the Option Globetrotter GT+ 3G
//! (`nozomi` driver) and the Huawei E620 (`usbserial`) — differing in
//! command latency and an initialization quirk of the nozomi firmware.
//!
//! The modem is a pure state machine: feed it command lines with
//! [`Modem::input_line`], collect due outputs with [`Modem::poll`], and use
//! [`Modem::next_wakeup`] to know when to poll again.

use std::collections::VecDeque;

use umtslab_sim::time::{Duration, Instant};

/// Supported 3G cards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceModel {
    /// Option Globetrotter GT+ 3G (PC-Card, nozomi driver).
    OptionGlobetrotterGt3G,
    /// Huawei E620 (USB, usbserial driver).
    HuaweiE620,
}

/// Timing profile of a device.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// Which card.
    pub model: DeviceModel,
    /// Processing delay for ordinary commands.
    pub command_delay: Duration,
    /// Additional settling delay before the first command after power-on
    /// (the nozomi firmware needs one; the Huawei does not).
    pub init_quirk_delay: Duration,
}

impl DeviceProfile {
    /// The Option Globetrotter GT+ 3G profile.
    pub fn option_globetrotter() -> DeviceProfile {
        DeviceProfile {
            model: DeviceModel::OptionGlobetrotterGt3G,
            command_delay: Duration::from_millis(150),
            init_quirk_delay: Duration::from_millis(1200),
        }
    }

    /// The Huawei E620 profile.
    pub fn huawei_e620() -> DeviceProfile {
        DeviceProfile {
            model: DeviceModel::HuaweiE620,
            command_delay: Duration::from_millis(80),
            init_quirk_delay: Duration::ZERO,
        }
    }

    /// Looks up a built-in profile by its registry key (the names
    /// declarative experiment packs use; see [`DEVICE_PRESETS`]).
    pub fn by_preset(key: &str) -> Option<DeviceProfile> {
        match key {
            "option_globetrotter" => Some(DeviceProfile::option_globetrotter()),
            "huawei_e620" => Some(DeviceProfile::huawei_e620()),
            _ => None,
        }
    }
}

/// Registry keys of the built-in device presets, in
/// [`DeviceProfile::by_preset`] order.
pub const DEVICE_PRESETS: [&str; 2] = ["option_globetrotter", "huawei_e620"];

/// What the modem "sees" of the operator network on the radio side.
#[derive(Debug, Clone)]
pub struct NetworkSignal {
    /// Operator display name (`AT+COPS?`).
    pub operator_name: String,
    /// The APN the operator accepts.
    pub apn: String,
    /// Time from power-on to network registration.
    pub registration_delay: Duration,
    /// The network refuses registration (roaming misconfig, barred SIM).
    pub registration_denied: bool,
    /// Time from `ATD` to `CONNECT`.
    pub dial_delay: Duration,
    /// The network rejects the data call.
    pub dial_refused: bool,
    /// The SIM requires a PIN that has not been entered.
    pub sim_pin_locked: bool,
}

impl NetworkSignal {
    /// A permissive default signal for tests.
    pub fn test_default() -> NetworkSignal {
        NetworkSignal {
            operator_name: "SIM-OP".to_string(),
            apn: "internet".to_string(),
            registration_delay: Duration::from_secs(2),
            registration_denied: false,
            dial_delay: Duration::from_secs(3),
            dial_refused: false,
            sim_pin_locked: false,
        }
    }
}

/// Registration status, as reported by `+CREG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegStatus {
    /// Not registered, not searching (code 0).
    Idle,
    /// Registered on the home network (code 1).
    Registered,
    /// Searching (code 2).
    Searching,
    /// Registration denied (code 3).
    Denied,
}

impl RegStatus {
    fn code(self) -> u8 {
        match self {
            RegStatus::Idle => 0,
            RegStatus::Registered => 1,
            RegStatus::Searching => 2,
            RegStatus::Denied => 3,
        }
    }
}

/// Modem mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModemMode {
    /// Accepting AT commands.
    Command,
    /// A data call is being set up.
    Dialing,
    /// Connected: the serial line carries PPP frames.
    Data,
}

/// Outputs produced by the modem toward the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModemOutput {
    /// A response line (`OK`, `ERROR`, `+CREG: 0,1`, ...).
    Line(String),
    /// The modem switched to data mode (follows the `CONNECT` line).
    EnterDataMode,
    /// The modem left data mode (carrier lost or `ATH`).
    ExitDataMode,
}

#[derive(Debug)]
enum Pending {
    Respond(Vec<String>),
    FinishDial,
}

/// The AT command interpreter.
#[derive(Debug)]
pub struct Modem {
    profile: DeviceProfile,
    signal: NetworkSignal,
    mode: ModemMode,
    reg: RegStatus,
    registered_at: Option<Instant>,
    echo: bool,
    /// APN configured by `AT+CGDCONT`, if any.
    configured_apn: Option<String>,
    pending: VecDeque<(Instant, Pending)>,
    first_command_seen: bool,
    powered_on_at: Instant,
    /// Firmware hard-hang: the modem ignores all input and produces no
    /// output until it is power-cycled (a fresh [`Modem::power_on`]).
    hung: bool,
    /// Commands the modem will silently swallow (lost on the serial bus),
    /// modelling a transient AT-command timeout.
    swallow_commands: u32,
}

impl Modem {
    /// Powers on a modem at `now`. Registration proceeds in the
    /// background and completes after the signal's registration delay.
    pub fn power_on(profile: DeviceProfile, signal: NetworkSignal, now: Instant) -> Modem {
        let registered_at =
            if signal.registration_denied { None } else { Some(now + signal.registration_delay) };
        Modem {
            profile,
            signal,
            mode: ModemMode::Command,
            reg: RegStatus::Searching,
            registered_at,
            echo: true,
            configured_apn: None,
            pending: VecDeque::new(),
            first_command_seen: false,
            powered_on_at: now,
            hung: false,
            swallow_commands: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> ModemMode {
        self.mode
    }

    /// Current registration status (updated lazily on poll/input).
    pub fn registration(&self) -> RegStatus {
        self.reg
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Hard-hangs the modem firmware: from now on every input byte is
    /// swallowed and no output is ever produced. Only a power cycle — a
    /// fresh [`Modem::power_on`] replacing this instance — recovers it.
    /// This mirrors the nozomi/usbserial lockups the paper's management
    /// scripts guard against with watchdog resets.
    pub fn hang(&mut self) {
        self.hung = true;
        self.pending.clear();
    }

    /// True if the firmware is hung (see [`Modem::hang`]).
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Arranges for the next command line to be silently lost, as if the
    /// serial bus dropped it: the host sees no response at all and must
    /// rely on its own timeout.
    pub fn swallow_next_command(&mut self) {
        self.swallow_commands += 1;
    }

    /// Detaches the modem from the operator network (coverage loss or
    /// network-side detach): registration falls back to searching and any
    /// data call drops. Re-registration completes after the signal's
    /// registration delay.
    pub fn detach(&mut self, now: Instant) {
        self.reg = RegStatus::Searching;
        if !self.signal.registration_denied {
            self.registered_at = Some(now + self.signal.registration_delay);
        }
        self.pending.retain(|(_, p)| !matches!(p, Pending::FinishDial));
        if self.mode != ModemMode::Command {
            self.mode = ModemMode::Command;
            if !self.hung {
                self.respond_at(now, vec!["NO CARRIER".into()]);
            }
        }
    }

    /// When the modem next needs a poll.
    pub fn next_wakeup(&self) -> Option<Instant> {
        if self.hung {
            return None;
        }
        let pend = self.pending.front().map(|&(at, _)| at);
        let reg = match (self.reg, self.registered_at) {
            (RegStatus::Searching, Some(at)) => Some(at),
            _ => None,
        };
        match (pend, reg) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Feeds one command line from the host (terminators already
    /// stripped). Ignored in data mode except for the `+++` escape.
    pub fn input_line(&mut self, now: Instant, line: &str) {
        if self.hung {
            return;
        }
        self.advance_registration(now);
        let line = line.trim();
        if self.swallow_commands > 0 && self.mode != ModemMode::Data {
            self.swallow_commands -= 1;
            return;
        }
        if self.mode == ModemMode::Data {
            if line == "+++" {
                self.mode = ModemMode::Command;
                self.respond_at(now + self.profile.command_delay, vec!["OK".into()]);
            }
            return;
        }
        if self.mode == ModemMode::Dialing {
            // Any command while dialing aborts the call attempt.
            self.pending.retain(|(_, p)| !matches!(p, Pending::FinishDial));
            self.mode = ModemMode::Command;
            self.respond_at(now + self.profile.command_delay, vec!["NO CARRIER".into()]);
            return;
        }

        let mut delay = self.profile.command_delay;
        if !self.first_command_seen {
            self.first_command_seen = true;
            // The nozomi firmware needs settling time after power-on.
            let quirk_until = self.powered_on_at + self.profile.init_quirk_delay;
            if quirk_until > now {
                delay += quirk_until.duration_since(now);
            }
        }

        let upper = line.to_ascii_uppercase();
        let responses = self.execute(now, &upper, line);
        if let Some(resp) = responses {
            self.respond_at(now + delay, resp);
        }
    }

    /// Collects outputs due by `now`.
    pub fn poll(&mut self, now: Instant) -> Vec<ModemOutput> {
        if self.hung {
            return Vec::new();
        }
        self.advance_registration(now);
        let mut out = Vec::new();
        while let Some(&(at, _)) = self.pending.front() {
            if at > now {
                break;
            }
            let (_, action) = self.pending.pop_front().expect("front exists");
            match action {
                Pending::Respond(lines) => {
                    out.extend(lines.into_iter().map(ModemOutput::Line));
                }
                Pending::FinishDial => {
                    if self.dial_should_succeed() {
                        self.mode = ModemMode::Data;
                        out.push(ModemOutput::Line("CONNECT".into()));
                        out.push(ModemOutput::EnterDataMode);
                    } else {
                        self.mode = ModemMode::Command;
                        out.push(ModemOutput::Line("NO CARRIER".into()));
                    }
                }
            }
        }
        out
    }

    /// Tears down a data call from the network side (carrier loss).
    pub fn drop_carrier(&mut self, now: Instant) {
        if self.mode == ModemMode::Data {
            self.mode = ModemMode::Command;
            if self.hung {
                return;
            }
            self.respond_at(now, vec!["NO CARRIER".into()]);
            self.pending.push_back((now, Pending::Respond(vec![])));
            // ExitDataMode is synthesized by poll consumers through mode().
        }
    }

    fn dial_should_succeed(&self) -> bool {
        if self.signal.dial_refused || self.reg != RegStatus::Registered {
            return false;
        }
        match &self.configured_apn {
            Some(apn) => apn == &self.signal.apn,
            // Some operators accept a default APN when none is configured.
            None => false,
        }
    }

    fn advance_registration(&mut self, now: Instant) {
        if self.signal.registration_denied {
            self.reg = RegStatus::Denied;
            return;
        }
        if self.reg == RegStatus::Searching {
            if let Some(at) = self.registered_at {
                if now >= at {
                    self.reg = RegStatus::Registered;
                }
            }
        }
    }

    fn respond_at(&mut self, at: Instant, lines: Vec<String>) {
        // Keep FIFO order even if an earlier response is still pending.
        let at = self.pending.back().map_or(at, |&(prev, _)| at.max(prev));
        self.pending.push_back((at, Pending::Respond(lines)));
    }

    fn execute(&mut self, now: Instant, upper: &str, raw: &str) -> Option<Vec<String>> {
        // Echo handling is left to the host side; we only interpret.
        if upper == "AT" || upper == "ATZ" {
            return Some(vec!["OK".into()]);
        }
        if upper == "ATE0" {
            self.echo = false;
            return Some(vec!["OK".into()]);
        }
        if upper == "ATE1" {
            self.echo = true;
            return Some(vec!["OK".into()]);
        }
        if upper == "ATH" {
            return Some(vec!["OK".into()]);
        }
        if upper == "AT+CPIN?" {
            return Some(if self.signal.sim_pin_locked {
                vec!["+CPIN: SIM PIN".into(), "OK".into()]
            } else {
                vec!["+CPIN: READY".into(), "OK".into()]
            });
        }
        if upper == "AT+CREG?" {
            return Some(vec![format!("+CREG: 0,{}", self.reg.code()), "OK".into()]);
        }
        if upper == "AT+CSQ" {
            // Fixed plausible signal quality.
            return Some(vec!["+CSQ: 18,99".into(), "OK".into()]);
        }
        if upper == "AT+COPS?" {
            return Some(if self.reg == RegStatus::Registered {
                vec![format!("+COPS: 0,0,\"{}\",2", self.signal.operator_name), "OK".into()]
            } else {
                vec!["+COPS: 0".into(), "OK".into()]
            });
        }
        if upper.starts_with("AT+CGDCONT=") {
            // AT+CGDCONT=1,"IP","apn.example"
            let args = &raw["AT+CGDCONT=".len()..];
            let parts: Vec<&str> = args.split(',').collect();
            if parts.len() >= 3 {
                let apn = parts[2].trim().trim_matches('"');
                self.configured_apn = Some(apn.to_string());
                return Some(vec!["OK".into()]);
            }
            return Some(vec!["ERROR".into()]);
        }
        if upper.starts_with("ATD") {
            // Data call: ATD*99# / ATD*99***1#
            if self.reg != RegStatus::Registered {
                return Some(vec!["NO CARRIER".into()]);
            }
            self.mode = ModemMode::Dialing;
            let at = now + self.signal.dial_delay;
            self.pending.push_back((at, Pending::FinishDial));
            return None; // response comes from FinishDial
        }
        Some(vec!["ERROR".into()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modem() -> Modem {
        Modem::power_on(DeviceProfile::huawei_e620(), NetworkSignal::test_default(), Instant::ZERO)
    }

    fn drain_lines(m: &mut Modem, now: Instant) -> Vec<String> {
        m.poll(now)
            .into_iter()
            .filter_map(|o| match o {
                ModemOutput::Line(l) => Some(l),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn basic_at_ok() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "AT");
        assert!(drain_lines(&mut m, Instant::from_millis(10)).is_empty());
        assert_eq!(drain_lines(&mut m, Instant::from_millis(80)), vec!["OK"]);
    }

    #[test]
    fn unknown_command_errors() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "AT+BOGUS");
        assert_eq!(drain_lines(&mut m, Instant::from_secs(1)), vec!["ERROR"]);
    }

    #[test]
    fn registration_progresses_over_time() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "AT+CREG?");
        let r = drain_lines(&mut m, Instant::from_millis(100));
        assert_eq!(r, vec!["+CREG: 0,2", "OK"]);

        // After the registration delay (2 s) the modem reports registered.
        m.input_line(Instant::from_secs(3), "AT+CREG?");
        let r = drain_lines(&mut m, Instant::from_secs(4));
        assert_eq!(r, vec!["+CREG: 0,1", "OK"]);
    }

    #[test]
    fn denied_registration_reports_code_3() {
        let mut sig = NetworkSignal::test_default();
        sig.registration_denied = true;
        let mut m = Modem::power_on(DeviceProfile::huawei_e620(), sig, Instant::ZERO);
        m.input_line(Instant::from_secs(10), "AT+CREG?");
        let r = drain_lines(&mut m, Instant::from_secs(11));
        assert_eq!(r, vec!["+CREG: 0,3", "OK"]);
        assert_eq!(m.registration(), RegStatus::Denied);
    }

    #[test]
    fn sim_pin_states() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "AT+CPIN?");
        assert_eq!(drain_lines(&mut m, Instant::from_secs(1)), vec!["+CPIN: READY", "OK"]);
        let mut sig = NetworkSignal::test_default();
        sig.sim_pin_locked = true;
        let mut m = Modem::power_on(DeviceProfile::huawei_e620(), sig, Instant::ZERO);
        m.input_line(Instant::ZERO, "AT+CPIN?");
        assert_eq!(drain_lines(&mut m, Instant::from_secs(1)), vec!["+CPIN: SIM PIN", "OK"]);
    }

    #[test]
    fn cops_reports_operator_when_registered() {
        let mut m = modem();
        m.input_line(Instant::from_secs(3), "AT+COPS?");
        let r = drain_lines(&mut m, Instant::from_secs(4));
        assert_eq!(r[0], "+COPS: 0,0,\"SIM-OP\",2");
    }

    #[test]
    fn full_dial_sequence_connects() {
        let mut m = modem();
        let t = Instant::from_secs(3); // registered by now
        m.input_line(t, "AT+CGDCONT=1,\"IP\",\"internet\"");
        assert_eq!(drain_lines(&mut m, t + Duration::from_secs(1)), vec!["OK"]);
        m.input_line(t + Duration::from_secs(1), "ATD*99***1#");
        assert_eq!(m.mode(), ModemMode::Dialing);
        // Dial takes 3 s.
        let out = m.poll(t + Duration::from_secs(5));
        assert_eq!(out, vec![ModemOutput::Line("CONNECT".into()), ModemOutput::EnterDataMode,]);
        assert_eq!(m.mode(), ModemMode::Data);
    }

    #[test]
    fn dial_with_wrong_apn_fails() {
        let mut m = modem();
        let t = Instant::from_secs(3);
        m.input_line(t, "AT+CGDCONT=1,\"IP\",\"wrong.apn\"");
        let _ = drain_lines(&mut m, t + Duration::from_secs(1));
        m.input_line(t + Duration::from_secs(1), "ATD*99#");
        let out = drain_lines(&mut m, t + Duration::from_secs(5));
        assert_eq!(out, vec!["NO CARRIER"]);
        assert_eq!(m.mode(), ModemMode::Command);
    }

    #[test]
    fn dial_without_apn_fails() {
        let mut m = modem();
        m.input_line(Instant::from_secs(3), "ATD*99#");
        let out = drain_lines(&mut m, Instant::from_secs(10));
        assert_eq!(out, vec!["NO CARRIER"]);
    }

    #[test]
    fn dial_before_registration_fails_fast() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "ATD*99#"); // still searching
        let out = drain_lines(&mut m, Instant::from_secs(1));
        assert_eq!(out, vec!["NO CARRIER"]);
    }

    #[test]
    fn plus_plus_plus_escapes_data_mode() {
        let mut m = modem();
        let t = Instant::from_secs(3);
        m.input_line(t, "AT+CGDCONT=1,\"IP\",\"internet\"");
        let _ = drain_lines(&mut m, t + Duration::from_secs(1));
        m.input_line(t + Duration::from_secs(1), "ATD*99#");
        let _ = m.poll(t + Duration::from_secs(5));
        assert_eq!(m.mode(), ModemMode::Data);
        m.input_line(t + Duration::from_secs(6), "+++");
        assert_eq!(m.mode(), ModemMode::Command);
        assert_eq!(drain_lines(&mut m, t + Duration::from_secs(7)), vec!["OK"]);
    }

    #[test]
    fn nozomi_quirk_delays_first_command_only() {
        let mut m = Modem::power_on(
            DeviceProfile::option_globetrotter(),
            NetworkSignal::test_default(),
            Instant::ZERO,
        );
        m.input_line(Instant::ZERO, "AT");
        // First response waits for the 1.2 s settling + 150 ms command time.
        assert!(drain_lines(&mut m, Instant::from_millis(1200)).is_empty());
        assert_eq!(drain_lines(&mut m, Instant::from_millis(1350)), vec!["OK"]);
        // Second command only pays the command delay.
        m.input_line(Instant::from_secs(2), "AT");
        assert_eq!(
            drain_lines(&mut m, Instant::from_secs(2) + Duration::from_millis(150)),
            vec!["OK"]
        );
    }

    #[test]
    fn command_during_dial_aborts() {
        let mut m = modem();
        let t = Instant::from_secs(3);
        m.input_line(t, "AT+CGDCONT=1,\"IP\",\"internet\"");
        let _ = drain_lines(&mut m, t + Duration::from_secs(1));
        m.input_line(t + Duration::from_secs(1), "ATD*99#");
        m.input_line(t + Duration::from_secs(2), "ATH"); // abort mid-dial
        let out = drain_lines(&mut m, t + Duration::from_secs(10));
        assert_eq!(out, vec!["NO CARRIER"]);
        assert_eq!(m.mode(), ModemMode::Command);
    }

    #[test]
    fn next_wakeup_tracks_pending_and_registration() {
        let mut m = modem();
        // Freshly powered: wakeup at registration time.
        assert_eq!(m.next_wakeup(), Some(Instant::from_secs(2)));
        m.input_line(Instant::ZERO, "AT");
        assert_eq!(m.next_wakeup(), Some(Instant::from_millis(80)));
        let _ = m.poll(Instant::from_millis(80));
        assert_eq!(m.next_wakeup(), Some(Instant::from_secs(2)));
        let _ = m.poll(Instant::from_secs(2));
        assert_eq!(m.next_wakeup(), None);
    }

    #[test]
    fn hung_modem_is_dead_until_power_cycle() {
        let mut m = modem();
        m.hang();
        assert!(m.is_hung());
        m.input_line(Instant::ZERO, "AT");
        assert!(m.poll(Instant::from_secs(10)).is_empty());
        assert_eq!(m.next_wakeup(), None);
        // A power cycle (fresh power_on) recovers.
        let mut m = Modem::power_on(
            DeviceProfile::huawei_e620(),
            NetworkSignal::test_default(),
            Instant::from_secs(10),
        );
        assert!(!m.is_hung());
        m.input_line(Instant::from_secs(10), "AT");
        assert_eq!(drain_lines(&mut m, Instant::from_secs(11)), vec!["OK"]);
    }

    #[test]
    fn swallowed_command_gets_no_response() {
        let mut m = modem();
        m.swallow_next_command();
        m.input_line(Instant::ZERO, "AT");
        assert!(drain_lines(&mut m, Instant::from_secs(1)).is_empty());
        // The next command is answered normally.
        m.input_line(Instant::from_secs(1), "AT");
        assert_eq!(drain_lines(&mut m, Instant::from_secs(2)), vec!["OK"]);
    }

    #[test]
    fn detach_drops_call_and_restarts_registration() {
        let mut m = modem();
        let t = Instant::from_secs(3);
        m.input_line(t, "AT+CGDCONT=1,\"IP\",\"internet\"");
        let _ = drain_lines(&mut m, t + Duration::from_secs(1));
        m.input_line(t + Duration::from_secs(1), "ATD*99#");
        let _ = m.poll(t + Duration::from_secs(5));
        assert_eq!(m.mode(), ModemMode::Data);
        let detach_at = t + Duration::from_secs(6);
        m.detach(detach_at);
        assert_eq!(m.mode(), ModemMode::Command);
        assert_eq!(drain_lines(&mut m, detach_at), vec!["NO CARRIER"]);
        assert_eq!(m.registration(), RegStatus::Searching);
        // Re-registration completes after the signal's registration delay.
        let _ = m.poll(detach_at + Duration::from_secs(2));
        assert_eq!(m.registration(), RegStatus::Registered);
    }

    #[test]
    fn responses_stay_fifo() {
        let mut m = modem();
        m.input_line(Instant::ZERO, "AT");
        m.input_line(Instant::ZERO, "AT+CREG?");
        let lines = drain_lines(&mut m, Instant::from_secs(1));
        assert_eq!(lines, vec!["OK", "+CREG: 0,2", "OK"]);
    }
}
