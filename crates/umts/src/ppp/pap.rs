//! PAP: the Password Authentication Protocol (RFC 1334).
//!
//! Commercial operators configure their GGSNs to demand a (usually
//! operator-wide, e.g. `web`/`web`) username and password; `wvdial` answers
//! with the values from `wvdial.conf`. PAP is a two-message protocol —
//! Authenticate-Request carrying the credentials, answered by
//! Authenticate-Ack or Authenticate-Nak — retransmitted by the client until
//! answered.

use umtslab_sim::time::{Duration, Instant};

use super::frame::{CpCode, CpPacket};

/// Credentials presented (client) or expected (server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credentials {
    /// Peer-ID (username).
    pub username: String,
    /// Password.
    pub password: String,
}

impl Credentials {
    /// Creates a credentials pair.
    pub fn new(username: impl Into<String>, password: impl Into<String>) -> Credentials {
        Credentials { username: username.into(), password: password.into() }
    }
}

/// Encodes an Authenticate-Request payload.
fn encode_auth_request(c: &Credentials) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + c.username.len() + c.password.len());
    out.push(c.username.len() as u8);
    out.extend_from_slice(c.username.as_bytes());
    out.push(c.password.len() as u8);
    out.extend_from_slice(c.password.as_bytes());
    out
}

/// Decodes an Authenticate-Request payload.
fn decode_auth_request(data: &[u8]) -> Option<Credentials> {
    let ulen = *data.first()? as usize;
    let user = data.get(1..1 + ulen)?;
    let plen = *data.get(1 + ulen)? as usize;
    let pass = data.get(2 + ulen..2 + ulen + plen)?;
    Some(Credentials {
        username: String::from_utf8_lossy(user).into_owned(),
        password: String::from_utf8_lossy(pass).into_owned(),
    })
}

fn encode_message(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(msg.len() as u8);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Authentication outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PapState {
    /// Not started.
    Idle,
    /// Client: request sent, awaiting the verdict.
    AwaitingVerdict,
    /// Success.
    Acked,
    /// Failure (bad credentials or retries exhausted).
    Failed,
}

/// Which role this machine plays.
#[derive(Debug)]
enum Role {
    Client { creds: Credentials },
    Server { expected: Option<Credentials> },
}

/// One side of a PAP exchange.
#[derive(Debug)]
pub struct PapMachine {
    role: Role,
    state: PapState,
    next_id: u8,
    req_id: u8,
    deadline: Option<Instant>,
    retries: u32,
    max_retries: u32,
    retry_interval: Duration,
}

impl PapMachine {
    /// Creates the authenticating (client) side.
    pub fn client(creds: Credentials) -> PapMachine {
        PapMachine {
            role: Role::Client { creds },
            state: PapState::Idle,
            next_id: 1,
            req_id: 0,
            deadline: None,
            retries: 0,
            max_retries: 5,
            retry_interval: Duration::from_secs(3),
        }
    }

    /// Creates the authenticator (server) side. `expected = None` accepts
    /// any credentials, as many commercial APNs do.
    pub fn server(expected: Option<Credentials>) -> PapMachine {
        PapMachine {
            role: Role::Server { expected },
            state: PapState::Idle,
            next_id: 1,
            req_id: 0,
            deadline: None,
            retries: 0,
            max_retries: 0,
            retry_interval: Duration::ZERO,
        }
    }

    /// Current state.
    pub fn state(&self) -> PapState {
        self.state
    }

    /// Next retransmission deadline.
    pub fn next_timeout(&self) -> Option<Instant> {
        self.deadline
    }

    /// Client: begins authentication, returning the first request.
    pub fn start(&mut self, now: Instant) -> Vec<CpPacket> {
        match self.role {
            Role::Client { .. } => {
                self.state = PapState::AwaitingVerdict;
                self.retries = 0;
                vec![self.build_request(now)]
            }
            Role::Server { .. } => {
                self.state = PapState::AwaitingVerdict;
                vec![]
            }
        }
    }

    /// Handles the retransmission timer.
    pub fn on_timeout(&mut self, now: Instant) -> Vec<CpPacket> {
        let Some(deadline) = self.deadline else { return vec![] };
        if now < deadline || self.state != PapState::AwaitingVerdict {
            return vec![];
        }
        if self.retries >= self.max_retries {
            self.state = PapState::Failed;
            self.deadline = None;
            return vec![];
        }
        self.retries += 1;
        vec![self.build_request(now)]
    }

    /// Processes a PAP packet, possibly producing a reply.
    pub fn input(&mut self, _now: Instant, packet: &CpPacket) -> Vec<CpPacket> {
        match (&self.role, packet.code) {
            (Role::Server { expected }, CpCode::ConfigureRequest) => {
                // PAP code 1 = Authenticate-Request (same numeric value).
                let ok = match (decode_auth_request(&packet.data), expected) {
                    (Some(_), None) => true,
                    (Some(got), Some(want)) => &got == want,
                    (None, _) => false,
                };
                if ok {
                    self.state = PapState::Acked;
                    vec![CpPacket::new(CpCode::ConfigureAck, packet.id, encode_message("Login OK"))]
                } else {
                    self.state = PapState::Failed;
                    vec![CpPacket::new(
                        CpCode::ConfigureNak,
                        packet.id,
                        encode_message("Authentication failure"),
                    )]
                }
            }
            (Role::Client { .. }, CpCode::ConfigureAck) => {
                if packet.id == self.req_id && self.state == PapState::AwaitingVerdict {
                    self.state = PapState::Acked;
                    self.deadline = None;
                }
                vec![]
            }
            (Role::Client { .. }, CpCode::ConfigureNak) => {
                if packet.id == self.req_id {
                    self.state = PapState::Failed;
                    self.deadline = None;
                }
                vec![]
            }
            _ => vec![],
        }
    }

    fn build_request(&mut self, now: Instant) -> CpPacket {
        let Role::Client { creds } = &self.role else {
            unreachable!("only clients send requests");
        };
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        self.req_id = id;
        self.deadline = Some(now + self.retry_interval);
        CpPacket::new(CpCode::ConfigureRequest, id, encode_auth_request(creds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn creds() -> Credentials {
        Credentials::new("web", "web")
    }

    #[test]
    fn request_payload_roundtrip() {
        let c = Credentials::new("user@apn", "s3cret");
        let enc = encode_auth_request(&c);
        assert_eq!(decode_auth_request(&enc), Some(c));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = encode_auth_request(&creds());
        assert!(decode_auth_request(&enc[..2]).is_none());
        assert!(decode_auth_request(&[]).is_none());
    }

    #[test]
    fn successful_authentication() {
        let mut client = PapMachine::client(creds());
        let mut server = PapMachine::server(Some(creds()));
        server.start(Instant::ZERO);
        let req = client.start(Instant::ZERO);
        assert_eq!(client.state(), PapState::AwaitingVerdict);
        let replies = server.input(Instant::ZERO, &req[0]);
        assert_eq!(server.state(), PapState::Acked);
        client.input(Instant::ZERO, &replies[0]);
        assert_eq!(client.state(), PapState::Acked);
        assert!(client.next_timeout().is_none());
    }

    #[test]
    fn wrong_password_fails() {
        let mut client = PapMachine::client(Credentials::new("web", "wrong"));
        let mut server = PapMachine::server(Some(creds()));
        server.start(Instant::ZERO);
        let req = client.start(Instant::ZERO);
        let replies = server.input(Instant::ZERO, &req[0]);
        assert_eq!(server.state(), PapState::Failed);
        client.input(Instant::ZERO, &replies[0]);
        assert_eq!(client.state(), PapState::Failed);
    }

    #[test]
    fn permissive_server_accepts_anything() {
        let mut client = PapMachine::client(Credentials::new("anything", "goes"));
        let mut server = PapMachine::server(None);
        server.start(Instant::ZERO);
        let req = client.start(Instant::ZERO);
        let replies = server.input(Instant::ZERO, &req[0]);
        assert_eq!(server.state(), PapState::Acked);
        client.input(Instant::ZERO, &replies[0]);
        assert_eq!(client.state(), PapState::Acked);
    }

    #[test]
    fn lost_request_is_retransmitted() {
        let mut client = PapMachine::client(creds());
        let _lost = client.start(Instant::ZERO);
        let t1 = client.next_timeout().unwrap();
        let retx = client.on_timeout(t1);
        assert_eq!(retx.len(), 1);
        assert_eq!(client.state(), PapState::AwaitingVerdict);
        // A server ack against the retransmitted id succeeds.
        let mut server = PapMachine::server(None);
        server.start(Instant::ZERO);
        let replies = server.input(t1, &retx[0]);
        client.input(t1, &replies[0]);
        assert_eq!(client.state(), PapState::Acked);
    }

    #[test]
    fn gives_up_after_max_retries() {
        let mut client = PapMachine::client(creds());
        let _ = client.start(Instant::ZERO);
        #[allow(unused_assignments)]
        let mut now = Instant::ZERO;
        for _ in 0..20 {
            let Some(t) = client.next_timeout() else { break };
            now = t;
            let _ = client.on_timeout(now);
            if client.state() == PapState::Failed {
                break;
            }
        }
        assert_eq!(client.state(), PapState::Failed);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut client = PapMachine::client(creds());
        let req = client.start(Instant::ZERO);
        let stale = CpPacket::new(CpCode::ConfigureAck, req[0].id.wrapping_add(3), vec![]);
        client.input(Instant::ZERO, &stale);
        assert_eq!(client.state(), PapState::AwaitingVerdict);
    }
}
