//! LCP: the Link Control Protocol option policy.
//!
//! Negotiates the Maximum-Receive-Unit, a magic number (used for loopback
//! detection and echo keepalives), and optionally an authentication
//! protocol (PAP) demanded by the network side — the shape of a real
//! operator's GGSN configuration, which `wvdial` answers with the
//! subscriber credentials.

use umtslab_net::wire::Ipv4Address;

use super::frame::CpOption;
use super::fsm::{OptionHandler, PeerJudgement};

/// LCP option types.
pub mod opt {
    /// Maximum-Receive-Unit.
    pub const MRU: u8 = 1;
    /// Authentication-Protocol.
    pub const AUTH_PROTOCOL: u8 = 3;
    /// Magic-Number.
    pub const MAGIC: u8 = 5;
}

/// The PAP protocol number carried inside the Authentication-Protocol
/// option.
pub const AUTH_PAP: u16 = 0xC023;

/// Values agreed by a completed LCP negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LcpNegotiated {
    /// The MRU the *peer* can receive (governs our transmit size).
    pub peer_mru: u16,
    /// The peer's magic number.
    pub peer_magic: u32,
    /// The peer requires us to authenticate with PAP.
    pub must_authenticate: bool,
}

/// LCP option handler for one side of the link.
#[derive(Debug)]
pub struct LcpHandler {
    /// MRU we advertise.
    own_mru: u16,
    /// Our magic number.
    own_magic: u32,
    /// As the network side: require the peer to authenticate with PAP.
    require_pap: bool,
    /// Dropped options (after Configure-Reject).
    offer_magic: bool,
    negotiated: LcpNegotiated,
    /// Count of loopback suspicions (peer echoed our magic).
    pub loopback_suspicions: u32,
}

impl LcpHandler {
    /// Smallest MRU this implementation accepts (RFC 791 minimum reassembly).
    pub const MIN_MRU: u16 = 576;
    /// Default MRU.
    pub const DEFAULT_MRU: u16 = 1500;

    /// Creates a handler. `require_pap` is set on the network (server)
    /// side when the operator demands authentication.
    pub fn new(own_magic: u32, require_pap: bool) -> LcpHandler {
        LcpHandler {
            own_mru: Self::DEFAULT_MRU,
            own_magic,
            require_pap,
            offer_magic: true,
            negotiated: LcpNegotiated {
                peer_mru: Self::DEFAULT_MRU,
                peer_magic: 0,
                must_authenticate: false,
            },
            loopback_suspicions: 0,
        }
    }

    /// Our magic number (used in echo requests).
    pub fn own_magic(&self) -> u32 {
        self.own_magic
    }

    /// The negotiated values.
    pub fn negotiated(&self) -> LcpNegotiated {
        self.negotiated
    }
}

impl OptionHandler for LcpHandler {
    fn request_options(&mut self) -> Vec<CpOption> {
        let mut opts = vec![CpOption::u16(opt::MRU, self.own_mru)];
        if self.offer_magic {
            opts.push(CpOption::u32(opt::MAGIC, self.own_magic));
        }
        if self.require_pap {
            opts.push(CpOption::u16(opt::AUTH_PROTOCOL, AUTH_PAP));
        }
        opts
    }

    fn judge(&mut self, options: &[CpOption]) -> PeerJudgement {
        let mut naks = Vec::new();
        let mut rejs = Vec::new();
        for o in options {
            match o.kind {
                opt::MRU => match o.as_u16() {
                    Some(v) if v >= Self::MIN_MRU => {}
                    _ => naks.push(CpOption::u16(opt::MRU, Self::DEFAULT_MRU)),
                },
                opt::MAGIC => match o.as_u32() {
                    Some(v) if v != self.own_magic && v != 0 => {}
                    _ => {
                        // Same magic (or zero): suspected loopback; suggest
                        // a different value derived from ours.
                        self.loopback_suspicions += 1;
                        naks.push(CpOption::u32(
                            opt::MAGIC,
                            self.own_magic.rotate_left(13) ^ 0xA5A5_5A5A,
                        ));
                    }
                },
                opt::AUTH_PROTOCOL => {
                    match o.as_u16() {
                        // We can do PAP as the authenticatee.
                        Some(AUTH_PAP) => {}
                        // Anything else (e.g. CHAP): counter-propose PAP.
                        _ => naks.push(CpOption::u16(opt::AUTH_PROTOCOL, AUTH_PAP)),
                    }
                }
                _ => rejs.push(o.clone()),
            }
        }
        if !rejs.is_empty() {
            PeerJudgement::Rej(rejs)
        } else if !naks.is_empty() {
            PeerJudgement::Nak(naks)
        } else {
            PeerJudgement::Ack
        }
    }

    fn peer_options_applied(&mut self, options: &[CpOption]) {
        for o in options {
            match o.kind {
                opt::MRU => {
                    if let Some(v) = o.as_u16() {
                        self.negotiated.peer_mru = v;
                    }
                }
                opt::MAGIC => {
                    if let Some(v) = o.as_u32() {
                        self.negotiated.peer_magic = v;
                    }
                }
                opt::AUTH_PROTOCOL if o.as_u16() == Some(AUTH_PAP) => {
                    self.negotiated.must_authenticate = true;
                }
                _ => {}
            }
        }
    }

    fn own_options_acked(&mut self, _options: &[CpOption]) {}

    fn own_options_naked(&mut self, options: &[CpOption]) {
        for o in options {
            match o.kind {
                opt::MRU => {
                    if let Some(v) = o.as_u16() {
                        self.own_mru = v.clamp(Self::MIN_MRU, Self::DEFAULT_MRU);
                    }
                }
                opt::MAGIC => {
                    if let Some(v) = o.as_u32() {
                        self.own_magic = v;
                    }
                }
                _ => {}
            }
        }
    }

    fn own_options_rejected(&mut self, options: &[CpOption]) {
        for o in options {
            if o.kind == opt::MAGIC {
                self.offer_magic = false;
            }
            if o.kind == opt::AUTH_PROTOCOL {
                self.require_pap = false;
            }
        }
    }
}

/// Helper: the LCP Echo-Request payload is the sender's magic number; this
/// builds one (used for keepalive probing of the PPP session).
pub fn echo_payload(magic: u32) -> Vec<u8> {
    magic.to_be_bytes().to_vec()
}

/// Extracts the magic from an echo payload.
pub fn echo_magic(data: &[u8]) -> Option<u32> {
    data.get(..4).and_then(|b| <[u8; 4]>::try_from(b).ok()).map(u32::from_be_bytes)
}

/// Converts an IPv4 address to the `u32` used in IPCP options (re-exported
/// here for symmetry with `echo_magic`).
pub fn addr_to_u32(addr: Ipv4Address) -> u32 {
    addr.to_u32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppp::fsm::{CpFsm, FsmConfig};
    use umtslab_sim::time::Instant;

    fn converge(a: &mut CpFsm<LcpHandler>, b: &mut CpFsm<LcpHandler>) {
        let mut to_b = a.open(Instant::ZERO).packets;
        let mut to_a = b.open(Instant::ZERO).packets;
        for _ in 0..20 {
            let mut nb = Vec::new();
            let mut na = Vec::new();
            for p in to_b.drain(..) {
                na.extend(b.input(Instant::ZERO, &p).packets);
            }
            for p in to_a.drain(..) {
                nb.extend(a.input(Instant::ZERO, &p).packets);
            }
            to_b = nb;
            to_a = na;
            if a.is_open() && b.is_open() {
                break;
            }
        }
    }

    #[test]
    fn plain_negotiation_opens() {
        let mut a = CpFsm::new(LcpHandler::new(0x1111_1111, false), FsmConfig::default());
        let mut b = CpFsm::new(LcpHandler::new(0x2222_2222, false), FsmConfig::default());
        converge(&mut a, &mut b);
        assert!(a.is_open() && b.is_open());
        assert_eq!(a.handler().negotiated().peer_magic, 0x2222_2222);
        assert_eq!(b.handler().negotiated().peer_magic, 0x1111_1111);
        assert_eq!(a.handler().negotiated().peer_mru, 1500);
        assert!(!a.handler().negotiated().must_authenticate);
    }

    #[test]
    fn server_demands_pap_and_client_accepts() {
        let mut client = CpFsm::new(LcpHandler::new(1, false), FsmConfig::default());
        let mut server = CpFsm::new(LcpHandler::new(2, true), FsmConfig::default());
        converge(&mut client, &mut server);
        assert!(client.is_open() && server.is_open());
        // The client learned it must authenticate.
        assert!(client.handler().negotiated().must_authenticate);
        // The server does not have to authenticate.
        assert!(!server.handler().negotiated().must_authenticate);
    }

    #[test]
    fn identical_magic_is_detected_as_loopback() {
        // Two endpoints with the same magic are indistinguishable from a
        // looped-back line: every Configure-Request is Naked, negotiation
        // never completes, and the suspicion counter climbs. (With
        // per-endpoint random magics this cannot happen in practice.)
        let mut a = CpFsm::new(LcpHandler::new(0xCAFE, false), FsmConfig::default());
        let mut b = CpFsm::new(LcpHandler::new(0xCAFE, false), FsmConfig::default());
        converge(&mut a, &mut b);
        assert!(!a.is_open() && !b.is_open());
        assert!(a.handler().loopback_suspicions > 0);
        assert!(b.handler().loopback_suspicions > 0);
    }

    #[test]
    fn tiny_mru_is_naked_up() {
        let mut h = LcpHandler::new(1, false);
        let judgement = h.judge(&[CpOption::u16(opt::MRU, 100)]);
        match judgement {
            PeerJudgement::Nak(opts) => {
                assert_eq!(opts[0].as_u16(), Some(1500));
            }
            other => panic!("expected nak, got {other:?}"),
        }
    }

    #[test]
    fn unknown_option_is_rejected() {
        let mut h = LcpHandler::new(1, false);
        let judgement = h.judge(&[CpOption::new(42, vec![1, 2, 3])]);
        match judgement {
            PeerJudgement::Rej(opts) => assert_eq!(opts[0].kind, 42),
            other => panic!("expected rej, got {other:?}"),
        }
    }

    #[test]
    fn chap_is_countered_with_pap() {
        let mut h = LcpHandler::new(1, false);
        // 0xC223 is CHAP.
        let judgement = h.judge(&[CpOption::u16(opt::AUTH_PROTOCOL, 0xC223)]);
        match judgement {
            PeerJudgement::Nak(opts) => assert_eq!(opts[0].as_u16(), Some(AUTH_PAP)),
            other => panic!("expected nak, got {other:?}"),
        }
    }

    #[test]
    fn rejected_magic_stops_being_offered() {
        let mut h = LcpHandler::new(7, false);
        assert!(h.request_options().iter().any(|o| o.kind == opt::MAGIC));
        h.own_options_rejected(&[CpOption::u32(opt::MAGIC, 7)]);
        assert!(!h.request_options().iter().any(|o| o.kind == opt::MAGIC));
    }

    #[test]
    fn echo_payload_roundtrip() {
        let p = echo_payload(0xDEAD_BEEF);
        assert_eq!(echo_magic(&p), Some(0xDEAD_BEEF));
        assert_eq!(echo_magic(&[1, 2]), None);
    }
}
