//! IPCP: the IP Control Protocol option policy.
//!
//! The client (the PlanetLab node) requests address `0.0.0.0`; the network
//! side (GGSN) Configure-Naks that with the address it allocates from the
//! session pool; the client re-requests the assigned address and is acked —
//! the standard dynamic-address dance every operator PPP session performs.
//! The negotiated pair `(local, peer)` is what the node then configures on
//! `ppp0`.

use umtslab_net::wire::Ipv4Address;

use super::frame::CpOption;
use super::fsm::{OptionHandler, PeerJudgement};

/// IPCP option types.
pub mod opt {
    /// IP-Address.
    pub const IP_ADDRESS: u8 = 3;
    /// Primary DNS server (RFC 1877).
    pub const PRIMARY_DNS: u8 = 129;
    /// Secondary DNS server (RFC 1877).
    pub const SECONDARY_DNS: u8 = 131;
}

/// Which side of the session this handler plays.
#[derive(Debug, Clone)]
pub enum IpcpRole {
    /// The dialing host: wants an address assigned.
    Client,
    /// The network side: owns an address and assigns the peer's.
    Server {
        /// The GGSN-side address it announces.
        own_addr: Ipv4Address,
        /// The address it will assign to the peer.
        assign_peer: Ipv4Address,
        /// DNS servers handed out on request.
        dns: [Ipv4Address; 2],
    },
}

/// IPCP option handler.
#[derive(Debug)]
pub struct IpcpHandler {
    role: IpcpRole,
    /// The address we currently request for ourselves.
    own_addr: Ipv4Address,
    /// Whether our address has been acked.
    own_acked: bool,
    /// The peer's address, learned from their Configure-Request.
    peer_addr: Option<Ipv4Address>,
    /// DNS servers learned via Nak (client side).
    dns: [Option<Ipv4Address>; 2],
    /// Client also asks for DNS servers.
    request_dns: bool,
}

impl IpcpHandler {
    /// Creates a client handler (requests a dynamic address).
    pub fn client(request_dns: bool) -> IpcpHandler {
        IpcpHandler {
            role: IpcpRole::Client,
            own_addr: Ipv4Address::UNSPECIFIED,
            own_acked: false,
            peer_addr: None,
            dns: [None, None],
            request_dns,
        }
    }

    /// Creates the network-side handler.
    pub fn server(
        own_addr: Ipv4Address,
        assign_peer: Ipv4Address,
        dns: [Ipv4Address; 2],
    ) -> IpcpHandler {
        IpcpHandler {
            role: IpcpRole::Server { own_addr, assign_peer, dns },
            own_addr,
            own_acked: false,
            peer_addr: None,
            dns: [None, None],
            request_dns: false,
        }
    }

    /// Our negotiated address (meaningful once acked).
    pub fn local_addr(&self) -> Ipv4Address {
        self.own_addr
    }

    /// True once the peer acked our address.
    pub fn local_addr_acked(&self) -> bool {
        self.own_acked
    }

    /// The peer's address, once learned.
    pub fn peer_addr(&self) -> Option<Ipv4Address> {
        self.peer_addr
    }

    /// DNS servers the network suggested (client side).
    pub fn dns_servers(&self) -> [Option<Ipv4Address>; 2] {
        self.dns
    }
}

impl OptionHandler for IpcpHandler {
    fn request_options(&mut self) -> Vec<CpOption> {
        let mut opts = vec![CpOption::u32(opt::IP_ADDRESS, self.own_addr.to_u32())];
        if self.request_dns {
            opts.push(CpOption::u32(
                opt::PRIMARY_DNS,
                self.dns[0].unwrap_or(Ipv4Address::UNSPECIFIED).to_u32(),
            ));
            opts.push(CpOption::u32(
                opt::SECONDARY_DNS,
                self.dns[1].unwrap_or(Ipv4Address::UNSPECIFIED).to_u32(),
            ));
        }
        opts
    }

    fn judge(&mut self, options: &[CpOption]) -> PeerJudgement {
        let mut naks = Vec::new();
        let mut rejs = Vec::new();
        for o in options {
            match (o.kind, &self.role) {
                (opt::IP_ADDRESS, IpcpRole::Server { assign_peer, .. }) => {
                    match o.as_u32().map(Ipv4Address::from_u32) {
                        Some(requested) if requested == *assign_peer => {}
                        _ => naks.push(CpOption::u32(opt::IP_ADDRESS, assign_peer.to_u32())),
                    }
                }
                (opt::IP_ADDRESS, IpcpRole::Client) => {
                    // The network announces its own (non-zero) address.
                    match o.as_u32() {
                        Some(v) if v != 0 => {}
                        _ => rejs.push(o.clone()),
                    }
                }
                (opt::PRIMARY_DNS, IpcpRole::Server { dns, .. }) => {
                    match o.as_u32().map(Ipv4Address::from_u32) {
                        Some(requested) if requested == dns[0] => {}
                        _ => naks.push(CpOption::u32(opt::PRIMARY_DNS, dns[0].to_u32())),
                    }
                }
                (opt::SECONDARY_DNS, IpcpRole::Server { dns, .. }) => {
                    match o.as_u32().map(Ipv4Address::from_u32) {
                        Some(requested) if requested == dns[1] => {}
                        _ => naks.push(CpOption::u32(opt::SECONDARY_DNS, dns[1].to_u32())),
                    }
                }
                _ => rejs.push(o.clone()),
            }
        }
        if !rejs.is_empty() {
            PeerJudgement::Rej(rejs)
        } else if !naks.is_empty() {
            PeerJudgement::Nak(naks)
        } else {
            PeerJudgement::Ack
        }
    }

    fn peer_options_applied(&mut self, options: &[CpOption]) {
        for o in options {
            if o.kind == opt::IP_ADDRESS {
                if let Some(v) = o.as_u32() {
                    self.peer_addr = Some(Ipv4Address::from_u32(v));
                }
            }
        }
    }

    fn own_options_acked(&mut self, _options: &[CpOption]) {
        self.own_acked = true;
    }

    fn own_options_naked(&mut self, options: &[CpOption]) {
        for o in options {
            match o.kind {
                opt::IP_ADDRESS => {
                    if let Some(v) = o.as_u32() {
                        self.own_addr = Ipv4Address::from_u32(v);
                    }
                }
                opt::PRIMARY_DNS => {
                    if let Some(v) = o.as_u32() {
                        self.dns[0] = Some(Ipv4Address::from_u32(v));
                    }
                }
                opt::SECONDARY_DNS => {
                    if let Some(v) = o.as_u32() {
                        self.dns[1] = Some(Ipv4Address::from_u32(v));
                    }
                }
                _ => {}
            }
        }
    }

    fn own_options_rejected(&mut self, options: &[CpOption]) {
        for o in options {
            if o.kind == opt::PRIMARY_DNS || o.kind == opt::SECONDARY_DNS {
                self.request_dns = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppp::fsm::{CpFsm, FsmConfig};
    use umtslab_sim::time::Instant;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn server_handler() -> IpcpHandler {
        IpcpHandler::server(a("10.64.0.1"), a("10.64.3.7"), [a("10.64.0.53"), a("10.64.0.54")])
    }

    fn converge(client: &mut CpFsm<IpcpHandler>, server: &mut CpFsm<IpcpHandler>) {
        let mut to_s = client.open(Instant::ZERO).packets;
        let mut to_c = server.open(Instant::ZERO).packets;
        for _ in 0..20 {
            let mut ns = Vec::new();
            let mut nc = Vec::new();
            for p in to_s.drain(..) {
                nc.extend(server.input(Instant::ZERO, &p).packets);
            }
            for p in to_c.drain(..) {
                ns.extend(client.input(Instant::ZERO, &p).packets);
            }
            to_s = ns;
            to_c = nc;
            if client.is_open() && server.is_open() {
                break;
            }
        }
    }

    #[test]
    fn dynamic_address_assignment() {
        let mut client = CpFsm::new(IpcpHandler::client(false), FsmConfig::default());
        let mut server = CpFsm::new(server_handler(), FsmConfig::default());
        converge(&mut client, &mut server);
        assert!(client.is_open() && server.is_open());
        assert_eq!(client.handler().local_addr(), a("10.64.3.7"));
        assert!(client.handler().local_addr_acked());
        assert_eq!(client.handler().peer_addr(), Some(a("10.64.0.1")));
        assert_eq!(server.handler().peer_addr(), Some(a("10.64.3.7")));
    }

    #[test]
    fn dns_servers_are_naked_to_client() {
        let mut client = CpFsm::new(IpcpHandler::client(true), FsmConfig::default());
        let mut server = CpFsm::new(server_handler(), FsmConfig::default());
        converge(&mut client, &mut server);
        assert!(client.is_open() && server.is_open());
        assert_eq!(client.handler().dns_servers(), [Some(a("10.64.0.53")), Some(a("10.64.0.54"))]);
    }

    #[test]
    fn client_rejects_zero_server_address() {
        let mut h = IpcpHandler::client(false);
        let judgement = h.judge(&[CpOption::u32(opt::IP_ADDRESS, 0)]);
        assert!(matches!(judgement, PeerJudgement::Rej(_)));
    }

    #[test]
    fn server_naks_wrong_requested_address() {
        let mut h = server_handler();
        let judgement = h.judge(&[CpOption::u32(opt::IP_ADDRESS, a("1.2.3.4").to_u32())]);
        match judgement {
            PeerJudgement::Nak(opts) => {
                assert_eq!(opts[0].as_u32(), Some(a("10.64.3.7").to_u32()));
            }
            other => panic!("expected nak, got {other:?}"),
        }
    }

    #[test]
    fn unknown_option_rejected() {
        let mut h = IpcpHandler::client(false);
        let judgement = h.judge(&[CpOption::new(99, vec![1])]);
        assert!(matches!(judgement, PeerJudgement::Rej(_)));
    }

    #[test]
    fn rejected_dns_stops_being_requested() {
        let mut h = IpcpHandler::client(true);
        assert_eq!(h.request_options().len(), 3);
        h.own_options_rejected(&[CpOption::u32(opt::PRIMARY_DNS, 0)]);
        assert_eq!(h.request_options().len(), 1);
    }

    #[test]
    fn address_dance_takes_exactly_one_nak() {
        // Inspect the packet exchange: client's first request carries
        // 0.0.0.0, gets naked, second request is acked.
        let mut client = CpFsm::new(IpcpHandler::client(false), FsmConfig::default());
        let mut server = CpFsm::new(server_handler(), FsmConfig::default());
        let _server_req = server.open(Instant::ZERO); // server must be open to negotiate
        let first_req = client.open(Instant::ZERO).packets.remove(0);
        let server_out = server.input(Instant::ZERO, &first_req);
        use crate::ppp::frame::CpCode;
        assert_eq!(server_out.packets[0].code, CpCode::ConfigureNak);
        let client_out = client.input(Instant::ZERO, &server_out.packets[0]);
        let second_req = &client_out.packets[0];
        assert_eq!(second_req.code, CpCode::ConfigureRequest);
        let server_out = server.input(Instant::ZERO, second_req);
        assert_eq!(server_out.packets[0].code, CpCode::ConfigureAck);
    }
}
