//! PPP: framing, option negotiation, authentication and session phases.
//!
//! The paper's integration work ships the PPP kernel modules
//! (`ppp_generic`, `ppp_async`, ...) into the PlanetLab kernel so that
//! `wvdial` can run a real PPP session over the 3G card. This module is the
//! simulation-side equivalent: a complete, testable PPP implementation —
//! HDLC-style framing with FCS-16 ([`frame`]), the RFC 1661 negotiation
//! automaton ([`fsm`]), LCP ([`lcp`]), PAP ([`pap`]) and IPCP ([`ipcp`])
//! policies, and the phase-composed session endpoint ([`endpoint`]).

pub mod endpoint;
pub mod frame;
pub mod fsm;
pub mod ipcp;
pub mod lcp;
pub mod pap;

pub use endpoint::{KeepaliveConfig, PppEndpoint, PppEvent, PppOutput, PppPhase, PppServerConfig};
pub use frame::{encode_frame, CpCode, CpOption, CpPacket, Deframer, PppFrame};
pub use fsm::{CpFsm, FsmConfig, FsmSignal, FsmState};
pub use pap::Credentials;
