//! The control-protocol option-negotiation automaton (RFC 1661 §4).
//!
//! One [`CpFsm`] instance drives one control protocol (LCP or IPCP) on one
//! end of the link. Protocol-specific behaviour — which options to request,
//! how to judge the peer's — is delegated to an [`OptionHandler`]. The
//! automaton implements the common negotiation core: Configure-Request /
//! Ack / Nak / Reject exchange, the restart timer with Max-Configure
//! give-up, Terminate handshake, and the this-layer-up/down signalling the
//! upper phase machine consumes.
//!
//! The state set is the RFC's, minus the passive-open states this stack
//! never enters (both ends actively open): `Closed`, `ReqSent`, `AckRcvd`,
//! `AckSent`, `Opened`, `Closing`, `Stopped`.

use umtslab_sim::time::{Duration, Instant};

use super::frame::{decode_options, encode_options, CpCode, CpOption, CpPacket};

/// Negotiation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Lower layer down or administratively closed.
    Closed,
    /// Our Configure-Request is out; nothing heard yet.
    ReqSent,
    /// Peer acked our request; waiting to ack theirs.
    AckRcvd,
    /// We acked the peer's request; ours not acked yet.
    AckSent,
    /// Both directions agreed: the layer is up.
    Opened,
    /// Terminate-Request sent, waiting for the Ack.
    Closing,
    /// Negotiation failed (Max-Configure exceeded or terminated by peer).
    Stopped,
}

/// How the handler judges a peer's Configure-Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerJudgement {
    /// All options acceptable as-is.
    Ack,
    /// Recognized options with unacceptable values; the payload carries
    /// the values we would accept.
    Nak(Vec<CpOption>),
    /// Options we refuse to negotiate at all.
    Rej(Vec<CpOption>),
}

/// Protocol-specific policy plugged into the FSM.
pub trait OptionHandler {
    /// The options to put in our next Configure-Request.
    fn request_options(&mut self) -> Vec<CpOption>;

    /// Judges the peer's Configure-Request options.
    fn judge(&mut self, options: &[CpOption]) -> PeerJudgement;

    /// Called when we Configure-Ack the peer's options (they are now in
    /// force for the peer→us direction).
    fn peer_options_applied(&mut self, options: &[CpOption]);

    /// Called when the peer acks our options.
    fn own_options_acked(&mut self, options: &[CpOption]);

    /// Called when the peer naks some of our options with suggested
    /// values; the handler should adjust its next request.
    fn own_options_naked(&mut self, options: &[CpOption]);

    /// Called when the peer rejects some of our options outright; the
    /// handler must stop requesting them.
    fn own_options_rejected(&mut self, options: &[CpOption]);
}

/// Layer signals emitted toward the phase machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmSignal {
    /// Negotiation completed: the layer is operational.
    ThisLayerUp,
    /// The layer left Opened.
    ThisLayerDown,
    /// Negotiation gave up or the terminate handshake finished.
    ThisLayerFinished,
}

/// Packets to transmit plus signals raised by one FSM step.
#[derive(Debug, Default)]
pub struct FsmOutput {
    /// Control packets to send to the peer.
    pub packets: Vec<CpPacket>,
    /// Layer signals.
    pub signals: Vec<FsmSignal>,
}

impl FsmOutput {
    fn none() -> FsmOutput {
        FsmOutput::default()
    }
}

/// Timing/retry parameters (RFC 1661 defaults).
#[derive(Debug, Clone)]
pub struct FsmConfig {
    /// Restart-timer interval.
    pub restart_interval: Duration,
    /// Max-Configure: Configure-Request transmissions before giving up.
    pub max_configure: u32,
    /// Max-Terminate: Terminate-Request transmissions before giving up.
    pub max_terminate: u32,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig { restart_interval: Duration::from_secs(3), max_configure: 10, max_terminate: 2 }
    }
}

/// The negotiation automaton.
#[derive(Debug)]
pub struct CpFsm<H: OptionHandler> {
    handler: H,
    state: FsmState,
    config: FsmConfig,
    next_id: u8,
    /// Id of our outstanding Configure-Request.
    req_id: u8,
    restart_deadline: Option<Instant>,
    restart_count: u32,
}

impl<H: OptionHandler> CpFsm<H> {
    /// Creates a closed FSM around a handler.
    pub fn new(handler: H, config: FsmConfig) -> CpFsm<H> {
        CpFsm {
            handler,
            state: FsmState::Closed,
            config,
            next_id: 1,
            req_id: 0,
            restart_deadline: None,
            restart_count: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// True once negotiation has completed.
    pub fn is_open(&self) -> bool {
        self.state == FsmState::Opened
    }

    /// Access to the protocol handler (to read negotiated values).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Mutable access to the protocol handler.
    pub fn handler_mut(&mut self) -> &mut H {
        &mut self.handler
    }

    /// The next restart-timer expiry, if one is armed.
    pub fn next_timeout(&self) -> Option<Instant> {
        self.restart_deadline
    }

    /// Administratively opens the layer (lower layer assumed up): sends
    /// the first Configure-Request.
    pub fn open(&mut self, now: Instant) -> FsmOutput {
        match self.state {
            FsmState::Closed | FsmState::Stopped => {
                self.restart_count = 0;
                let req = self.build_request();
                self.state = FsmState::ReqSent;
                self.arm_timer(now);
                FsmOutput { packets: vec![req], signals: vec![] }
            }
            _ => FsmOutput::none(),
        }
    }

    /// Administratively closes the layer: starts the terminate handshake.
    pub fn close(&mut self, now: Instant) -> FsmOutput {
        match self.state {
            FsmState::Opened | FsmState::ReqSent | FsmState::AckRcvd | FsmState::AckSent => {
                let was_open = self.state == FsmState::Opened;
                self.state = FsmState::Closing;
                self.restart_count = 0;
                self.arm_timer(now);
                let term = CpPacket::new(CpCode::TerminateRequest, self.allocate_id(), vec![]);
                let mut signals = vec![];
                if was_open {
                    signals.push(FsmSignal::ThisLayerDown);
                }
                FsmOutput { packets: vec![term], signals }
            }
            _ => FsmOutput::none(),
        }
    }

    /// The lower layer dropped (carrier loss): hard reset.
    pub fn lower_down(&mut self) -> FsmOutput {
        let was_open = self.state == FsmState::Opened;
        self.state = FsmState::Closed;
        self.restart_deadline = None;
        let mut signals = vec![];
        if was_open {
            signals.push(FsmSignal::ThisLayerDown);
        }
        FsmOutput { packets: vec![], signals }
    }

    /// Handles the restart timer.
    pub fn on_timeout(&mut self, now: Instant) -> FsmOutput {
        let Some(deadline) = self.restart_deadline else {
            return FsmOutput::none();
        };
        if now < deadline {
            return FsmOutput::none();
        }
        match self.state {
            FsmState::ReqSent | FsmState::AckRcvd | FsmState::AckSent => {
                if self.restart_count >= self.config.max_configure {
                    self.state = FsmState::Stopped;
                    self.restart_deadline = None;
                    return FsmOutput {
                        packets: vec![],
                        signals: vec![FsmSignal::ThisLayerFinished],
                    };
                }
                // TO+: retransmit Configure-Request.
                let req = self.build_request();
                if self.state == FsmState::AckRcvd {
                    // Per RFC, AckRcvd falls back to ReqSent on timeout.
                    self.state = FsmState::ReqSent;
                }
                self.arm_timer(now);
                FsmOutput { packets: vec![req], signals: vec![] }
            }
            FsmState::Closing => {
                if self.restart_count >= self.config.max_terminate {
                    self.state = FsmState::Stopped;
                    self.restart_deadline = None;
                    return FsmOutput {
                        packets: vec![],
                        signals: vec![FsmSignal::ThisLayerFinished],
                    };
                }
                self.restart_count += 1;
                self.restart_deadline = Some(now + self.config.restart_interval);
                let term = CpPacket::new(CpCode::TerminateRequest, self.allocate_id(), vec![]);
                FsmOutput { packets: vec![term], signals: vec![] }
            }
            _ => {
                self.restart_deadline = None;
                FsmOutput::none()
            }
        }
    }

    /// Processes a received control packet.
    pub fn input(&mut self, now: Instant, packet: &CpPacket) -> FsmOutput {
        match packet.code {
            CpCode::ConfigureRequest => self.rcv_configure_request(now, packet),
            CpCode::ConfigureAck => self.rcv_configure_ack(now, packet),
            CpCode::ConfigureNak | CpCode::ConfigureReject => {
                self.rcv_configure_nak_rej(now, packet)
            }
            CpCode::TerminateRequest => self.rcv_terminate_request(packet),
            CpCode::TerminateAck => self.rcv_terminate_ack(),
            CpCode::EchoRequest => {
                // Reply only when open, per RFC 1661 §5.8.
                if self.state == FsmState::Opened {
                    FsmOutput {
                        packets: vec![CpPacket::new(
                            CpCode::EchoReply,
                            packet.id,
                            packet.data.clone(),
                        )],
                        signals: vec![],
                    }
                } else {
                    FsmOutput::none()
                }
            }
            CpCode::EchoReply | CpCode::CodeReject => FsmOutput::none(),
            CpCode::Other(_) => FsmOutput {
                packets: vec![CpPacket::new(
                    CpCode::CodeReject,
                    self.allocate_id(),
                    packet.encode(),
                )],
                signals: vec![],
            },
        }
    }

    fn rcv_configure_request(&mut self, now: Instant, packet: &CpPacket) -> FsmOutput {
        let Some(options) = decode_options(&packet.data) else {
            return FsmOutput::none(); // structurally damaged: silently discard
        };
        if matches!(self.state, FsmState::Closed | FsmState::Stopped | FsmState::Closing) {
            if self.state == FsmState::Closed {
                // RFC: send Terminate-Ack in Closed.
                return FsmOutput {
                    packets: vec![CpPacket::new(CpCode::TerminateAck, packet.id, vec![])],
                    signals: vec![],
                };
            }
            return FsmOutput::none();
        }
        let mut out = FsmOutput::none();
        match self.handler.judge(&options) {
            PeerJudgement::Ack => {
                self.handler.peer_options_applied(&options);
                out.packets.push(CpPacket::new(
                    CpCode::ConfigureAck,
                    packet.id,
                    packet.data.clone(),
                ));
                match self.state {
                    FsmState::ReqSent => self.state = FsmState::AckSent,
                    FsmState::AckRcvd => {
                        self.state = FsmState::Opened;
                        self.restart_deadline = None;
                        out.signals.push(FsmSignal::ThisLayerUp);
                    }
                    FsmState::AckSent => {}
                    FsmState::Opened => {
                        // Renegotiation: go down, ack theirs, resend ours.
                        out.signals.push(FsmSignal::ThisLayerDown);
                        let req = self.build_request();
                        out.packets.push(req);
                        self.state = FsmState::AckSent;
                        self.arm_timer(now);
                    }
                    _ => {}
                }
            }
            PeerJudgement::Nak(suggested) => {
                out.packets.push(CpPacket::new(
                    CpCode::ConfigureNak,
                    packet.id,
                    encode_options(&suggested),
                ));
                if self.state == FsmState::AckSent {
                    self.state = FsmState::ReqSent;
                }
            }
            PeerJudgement::Rej(bad) => {
                out.packets.push(CpPacket::new(
                    CpCode::ConfigureReject,
                    packet.id,
                    encode_options(&bad),
                ));
                if self.state == FsmState::AckSent {
                    self.state = FsmState::ReqSent;
                }
            }
        }
        out
    }

    fn rcv_configure_ack(&mut self, now: Instant, packet: &CpPacket) -> FsmOutput {
        if packet.id != self.req_id {
            return FsmOutput::none(); // stale ack
        }
        let options = decode_options(&packet.data).unwrap_or_default();
        self.handler.own_options_acked(&options);
        let mut out = FsmOutput::none();
        match self.state {
            FsmState::ReqSent => {
                self.state = FsmState::AckRcvd;
                self.restart_count = 0;
                self.arm_timer(now);
            }
            FsmState::AckSent => {
                self.state = FsmState::Opened;
                self.restart_deadline = None;
                out.signals.push(FsmSignal::ThisLayerUp);
            }
            FsmState::AckRcvd | FsmState::Opened => { /* duplicate: ignore */ }
            _ => {}
        }
        out
    }

    fn rcv_configure_nak_rej(&mut self, now: Instant, packet: &CpPacket) -> FsmOutput {
        if packet.id != self.req_id {
            return FsmOutput::none();
        }
        let options = decode_options(&packet.data).unwrap_or_default();
        match packet.code {
            CpCode::ConfigureNak => self.handler.own_options_naked(&options),
            _ => self.handler.own_options_rejected(&options),
        }
        match self.state {
            FsmState::ReqSent | FsmState::AckRcvd | FsmState::AckSent => {
                let req = self.build_request();
                if self.state == FsmState::AckRcvd {
                    self.state = FsmState::ReqSent;
                }
                self.arm_timer(now);
                FsmOutput { packets: vec![req], signals: vec![] }
            }
            _ => FsmOutput::none(),
        }
    }

    fn rcv_terminate_request(&mut self, packet: &CpPacket) -> FsmOutput {
        let mut out = FsmOutput {
            packets: vec![CpPacket::new(CpCode::TerminateAck, packet.id, vec![])],
            signals: vec![],
        };
        if self.state == FsmState::Opened {
            out.signals.push(FsmSignal::ThisLayerDown);
        }
        if self.state != FsmState::Closed && self.state != FsmState::Closing {
            self.state = FsmState::Stopped;
            self.restart_deadline = None;
            out.signals.push(FsmSignal::ThisLayerFinished);
        }
        out
    }

    fn rcv_terminate_ack(&mut self) -> FsmOutput {
        match self.state {
            FsmState::Closing => {
                self.state = FsmState::Closed;
                self.restart_deadline = None;
                FsmOutput { packets: vec![], signals: vec![FsmSignal::ThisLayerFinished] }
            }
            FsmState::Opened => {
                // Peer unilaterally tore down.
                self.state = FsmState::Stopped;
                self.restart_deadline = None;
                FsmOutput {
                    packets: vec![],
                    signals: vec![FsmSignal::ThisLayerDown, FsmSignal::ThisLayerFinished],
                }
            }
            _ => FsmOutput::none(),
        }
    }

    fn build_request(&mut self) -> CpPacket {
        self.restart_count += 1;
        let id = self.allocate_id();
        self.req_id = id;
        let options = self.handler.request_options();
        CpPacket::new(CpCode::ConfigureRequest, id, encode_options(&options))
    }

    fn allocate_id(&mut self) -> u8 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        if self.next_id == 0 {
            self.next_id = 1;
        }
        id
    }

    fn arm_timer(&mut self, now: Instant) {
        self.restart_deadline = Some(now + self.config.restart_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that requests a fixed option and accepts anything.
    #[derive(Debug, Default)]
    struct Accepting {
        acked: bool,
        peer_applied: bool,
    }

    impl OptionHandler for Accepting {
        fn request_options(&mut self) -> Vec<CpOption> {
            vec![CpOption::u16(1, 1500)]
        }
        fn judge(&mut self, _: &[CpOption]) -> PeerJudgement {
            PeerJudgement::Ack
        }
        fn peer_options_applied(&mut self, _: &[CpOption]) {
            self.peer_applied = true;
        }
        fn own_options_acked(&mut self, _: &[CpOption]) {
            self.acked = true;
        }
        fn own_options_naked(&mut self, _: &[CpOption]) {}
        fn own_options_rejected(&mut self, _: &[CpOption]) {}
    }

    /// A handler that naks the first request, then accepts.
    #[derive(Debug, Default)]
    struct NakOnce {
        naks_sent: u32,
        got_nak_value: Option<u16>,
        mru: u16,
    }

    impl OptionHandler for NakOnce {
        fn request_options(&mut self) -> Vec<CpOption> {
            vec![CpOption::u16(1, if self.mru == 0 { 9999 } else { self.mru })]
        }
        fn judge(&mut self, opts: &[CpOption]) -> PeerJudgement {
            let mru =
                opts.iter().find(|o| o.kind == 1).and_then(super::super::frame::CpOption::as_u16);
            if mru == Some(9999) {
                self.naks_sent += 1;
                PeerJudgement::Nak(vec![CpOption::u16(1, 1500)])
            } else {
                PeerJudgement::Ack
            }
        }
        fn peer_options_applied(&mut self, _: &[CpOption]) {}
        fn own_options_acked(&mut self, _: &[CpOption]) {}
        fn own_options_naked(&mut self, opts: &[CpOption]) {
            if let Some(v) =
                opts.iter().find(|o| o.kind == 1).and_then(super::super::frame::CpOption::as_u16)
            {
                self.got_nak_value = Some(v);
                self.mru = v;
            }
        }
        fn own_options_rejected(&mut self, _: &[CpOption]) {}
    }

    /// Runs both FSMs to quiescence over a lossless in-order channel with
    /// `loss` applied to every packet index in `drop_set` (for loss tests).
    fn converge<HA: OptionHandler, HB: OptionHandler>(
        a: &mut CpFsm<HA>,
        b: &mut CpFsm<HB>,
        horizon_secs: u64,
    ) -> (Vec<FsmSignal>, Vec<FsmSignal>) {
        let mut sig_a = Vec::new();
        let mut sig_b = Vec::new();
        let mut to_b: Vec<CpPacket> = Vec::new();
        let mut to_a: Vec<CpPacket> = Vec::new();

        let out = a.open(Instant::ZERO);
        to_b.extend(out.packets);
        sig_a.extend(out.signals);
        let out = b.open(Instant::ZERO);
        to_a.extend(out.packets);
        sig_b.extend(out.signals);

        let mut now = Instant::ZERO;
        let horizon = Instant::from_secs(horizon_secs);
        while now < horizon {
            let mut progressed = false;
            for p in std::mem::take(&mut to_b) {
                let out = b.input(now, &p);
                to_a.extend(out.packets);
                sig_b.extend(out.signals);
                progressed = true;
            }
            for p in std::mem::take(&mut to_a) {
                let out = a.input(now, &p);
                to_b.extend(out.packets);
                sig_a.extend(out.signals);
                progressed = true;
            }
            if !progressed {
                // Advance to the next timer.
                let next = [a.next_timeout(), b.next_timeout()].into_iter().flatten().min();
                match next {
                    Some(t) if t < horizon => {
                        now = t;
                        let out = a.on_timeout(now);
                        to_b.extend(out.packets);
                        sig_a.extend(out.signals);
                        let out = b.on_timeout(now);
                        to_a.extend(out.packets);
                        sig_b.extend(out.signals);
                    }
                    _ => break,
                }
            }
        }
        (sig_a, sig_b)
    }

    #[test]
    fn two_accepting_peers_open() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        let (sa, sb) = converge(&mut a, &mut b, 30);
        assert!(a.is_open());
        assert!(b.is_open());
        assert!(sa.contains(&FsmSignal::ThisLayerUp));
        assert!(sb.contains(&FsmSignal::ThisLayerUp));
        assert!(a.handler().acked);
        assert!(a.handler().peer_applied);
    }

    #[test]
    fn nak_flow_converges_with_suggested_value() {
        let mut a = CpFsm::new(NakOnce::default(), FsmConfig::default());
        let mut b = CpFsm::new(NakOnce::default(), FsmConfig::default());
        let (_, _) = converge(&mut a, &mut b, 30);
        assert!(a.is_open() && b.is_open());
        assert_eq!(a.handler().got_nak_value, Some(1500));
        assert_eq!(b.handler().got_nak_value, Some(1500));
    }

    #[test]
    fn lost_request_is_retransmitted() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        // Drop A's first request on the floor; B never opens it.
        let _lost = a.open(Instant::ZERO);
        let out_b = b.open(Instant::ZERO);
        // B's request reaches A fine.
        let mut to_b = Vec::new();
        let mut now = Instant::ZERO;
        for p in out_b.packets {
            to_b.extend(a.input(now, &p).packets);
        }
        // Deliver A's ack to B; B is AckSent... wait for A's retransmit.
        for p in std::mem::take(&mut to_b) {
            let _ = b.input(now, &p);
        }
        assert!(!b.is_open());
        // Fire A's restart timer: it resends the request.
        now = a.next_timeout().unwrap();
        let retx = a.on_timeout(now);
        assert_eq!(retx.packets.len(), 1);
        let ack = b.input(now, &retx.packets[0]);
        assert!(b.is_open(), "B opens on acking A's retransmitted request");
        // And A opens when the ack arrives.
        let out = a.input(now, &ack.packets[0]);
        assert!(a.is_open());
        assert!(out.signals.contains(&FsmSignal::ThisLayerUp));
    }

    #[test]
    fn gives_up_after_max_configure() {
        let cfg = FsmConfig { max_configure: 3, ..FsmConfig::default() };
        let mut a = CpFsm::new(Accepting::default(), cfg);
        let _ = a.open(Instant::ZERO);
        #[allow(unused_assignments)]
        let mut now = Instant::ZERO;
        let mut finished = false;
        for _ in 0..10 {
            let Some(t) = a.next_timeout() else { break };
            now = t;
            let out = a.on_timeout(now);
            if out.signals.contains(&FsmSignal::ThisLayerFinished) {
                finished = true;
                break;
            }
        }
        assert!(finished);
        assert_eq!(a.state(), FsmState::Stopped);
    }

    #[test]
    fn terminate_handshake() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        converge(&mut a, &mut b, 30);
        assert!(a.is_open() && b.is_open());

        let now = Instant::from_secs(40);
        let out = a.close(now);
        assert!(out.signals.contains(&FsmSignal::ThisLayerDown));
        assert_eq!(a.state(), FsmState::Closing);
        let term_req = &out.packets[0];
        let out_b = b.input(now, term_req);
        assert!(out_b.signals.contains(&FsmSignal::ThisLayerDown));
        assert_eq!(b.state(), FsmState::Stopped);
        let out_a = a.input(now, &out_b.packets[0]);
        assert_eq!(a.state(), FsmState::Closed);
        assert!(out_a.signals.contains(&FsmSignal::ThisLayerFinished));
    }

    #[test]
    fn terminate_request_retransmits_then_gives_up() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        converge(&mut a, &mut b, 30);
        let mut now = Instant::from_secs(40);
        let _ = a.close(now); // term-req lost
        let mut finishes = 0;
        for _ in 0..5 {
            let Some(t) = a.next_timeout() else { break };
            now = t;
            let out = a.on_timeout(now);
            if out.signals.contains(&FsmSignal::ThisLayerFinished) {
                finishes += 1;
            }
        }
        assert_eq!(finishes, 1);
        assert_eq!(a.state(), FsmState::Stopped);
    }

    #[test]
    fn echo_request_answered_only_when_open() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let echo = CpPacket::new(CpCode::EchoRequest, 5, vec![0, 0, 0, 0]);
        // Closed: no reply.
        assert!(a.input(Instant::ZERO, &echo).packets.is_empty());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        converge(&mut a, &mut b, 30);
        let out = a.input(Instant::from_secs(31), &echo);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].code, CpCode::EchoReply);
        assert_eq!(out.packets[0].id, 5);
    }

    #[test]
    fn unknown_code_is_code_rejected() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let weird = CpPacket::new(CpCode::Other(42), 1, vec![]);
        let out = a.input(Instant::ZERO, &weird);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].code, CpCode::CodeReject);
    }

    #[test]
    fn stale_ack_is_ignored() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let out = a.open(Instant::ZERO);
        let req_id = out.packets[0].id;
        let stale = CpPacket::new(CpCode::ConfigureAck, req_id.wrapping_add(7), vec![]);
        let out = a.input(Instant::ZERO, &stale);
        assert!(out.packets.is_empty() && out.signals.is_empty());
        assert_eq!(a.state(), FsmState::ReqSent);
    }

    #[test]
    fn lower_down_resets_to_closed() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let mut b = CpFsm::new(Accepting::default(), FsmConfig::default());
        converge(&mut a, &mut b, 30);
        let out = a.lower_down();
        assert!(out.signals.contains(&FsmSignal::ThisLayerDown));
        assert_eq!(a.state(), FsmState::Closed);
        assert!(a.next_timeout().is_none());
    }

    #[test]
    fn configure_request_in_closed_gets_terminate_ack() {
        let mut a = CpFsm::new(Accepting::default(), FsmConfig::default());
        let req = CpPacket::new(CpCode::ConfigureRequest, 9, vec![]);
        let out = a.input(Instant::ZERO, &req);
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.packets[0].code, CpCode::TerminateAck);
    }
}
