//! PPP framing: HDLC-like encapsulation (RFC 1662) and the control-protocol
//! packet codec shared by LCP, PAP and IPCP.
//!
//! Frames are delimited by the `0x7E` flag, byte-stuffed with the `0x7D`
//! escape, and protected by the 16-bit FCS (CRC-16/X.25). The default
//! async-control-character-map is used: every octet below `0x20`, plus the
//! flag and escape octets themselves, is escaped on transmit.

/// Standard PPP protocol numbers used by this stack.
pub mod protocol {
    /// IPv4 datagrams.
    pub const IPV4: u16 = 0x0021;
    /// Link Control Protocol.
    pub const LCP: u16 = 0xC021;
    /// Password Authentication Protocol.
    pub const PAP: u16 = 0xC023;
    /// IP Control Protocol.
    pub const IPCP: u16 = 0x8021;
}

const FLAG: u8 = 0x7E;
const ESCAPE: u8 = 0x7D;
const XOR: u8 = 0x20;
const ADDRESS: u8 = 0xFF;
const CONTROL: u8 = 0x03;

/// Computes the PPP FCS-16 (CRC-16/X.25, reflected polynomial `0x8408`)
/// over `data`, returning the final complemented value.
pub fn fcs16(data: &[u8]) -> u16 {
    let mut fcs: u16 = 0xFFFF;
    for &b in data {
        fcs ^= u16::from(b);
        for _ in 0..8 {
            if fcs & 1 != 0 {
                fcs = (fcs >> 1) ^ 0x8408;
            } else {
                fcs >>= 1;
            }
        }
    }
    !fcs
}

fn needs_escape(b: u8) -> bool {
    b == FLAG || b == ESCAPE || b < 0x20
}

/// Encodes one PPP frame: flag, stuffed address/control/protocol/payload/
/// FCS, flag.
pub fn encode_frame(protocol: u16, payload: &[u8]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(payload.len() + 6);
    raw.push(ADDRESS);
    raw.push(CONTROL);
    raw.extend_from_slice(&protocol.to_be_bytes());
    raw.extend_from_slice(payload);
    let fcs = fcs16(&raw);
    // FCS is transmitted least-significant byte first.
    raw.push((fcs & 0xFF) as u8);
    raw.push((fcs >> 8) as u8);

    let mut out = Vec::with_capacity(raw.len() + 8);
    out.push(FLAG);
    for b in raw {
        if needs_escape(b) {
            out.push(ESCAPE);
            out.push(b ^ XOR);
        } else {
            out.push(b);
        }
    }
    out.push(FLAG);
    out
}

/// A decoded PPP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PppFrame {
    /// The PPP protocol field.
    pub protocol: u16,
    /// The information field.
    pub payload: Vec<u8>,
}

/// Errors detected while deframing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// FCS mismatch: the frame was damaged.
    BadFcs,
    /// Frame too short to hold address/control/protocol/FCS.
    Runt,
    /// Address/control bytes were not `FF 03`.
    BadHeader,
}

/// Incremental deframer: feed arbitrary byte chunks, collect whole frames.
#[derive(Debug, Default)]
pub struct Deframer {
    buf: Vec<u8>,
    escaped: bool,
    /// Frames that failed validation (for diagnostics).
    pub errors: u64,
}

impl Deframer {
    /// Creates an empty deframer.
    pub fn new() -> Deframer {
        Deframer::default()
    }

    /// Feeds bytes; returns each complete, valid frame.
    pub fn feed(&mut self, data: &[u8]) -> Vec<PppFrame> {
        let mut frames = Vec::new();
        for &b in data {
            if b == FLAG {
                if !self.buf.is_empty() {
                    match Self::finish(&self.buf) {
                        Ok(f) => frames.push(f),
                        Err(_) => self.errors += 1,
                    }
                    self.buf.clear();
                }
                self.escaped = false;
                continue;
            }
            if b == ESCAPE {
                self.escaped = true;
                continue;
            }
            let b = if self.escaped {
                self.escaped = false;
                b ^ XOR
            } else {
                b
            };
            self.buf.push(b);
        }
        frames
    }

    fn finish(raw: &[u8]) -> Result<PppFrame, FrameError> {
        if raw.len() < 6 {
            return Err(FrameError::Runt);
        }
        // Verify FCS over everything including the trailing FCS: the
        // result over a good frame is the constant 0xF0B8 (pre-complement),
        // equivalently fcs16 over data-without-fcs equals the stored value.
        let (body, fcs_bytes) = raw.split_at(raw.len() - 2);
        let stored = u16::from(fcs_bytes[0]) | (u16::from(fcs_bytes[1]) << 8);
        if fcs16(body) != stored {
            return Err(FrameError::BadFcs);
        }
        if body[0] != ADDRESS || body[1] != CONTROL {
            return Err(FrameError::BadHeader);
        }
        let protocol = u16::from_be_bytes([body[2], body[3]]);
        Ok(PppFrame { protocol, payload: body[4..].to_vec() })
    }
}

/// Control-protocol packet codes (RFC 1661 §5, plus PAP's codes which share
/// the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpCode {
    /// Configure-Request.
    ConfigureRequest,
    /// Configure-Ack.
    ConfigureAck,
    /// Configure-Nak.
    ConfigureNak,
    /// Configure-Reject.
    ConfigureReject,
    /// Terminate-Request.
    TerminateRequest,
    /// Terminate-Ack.
    TerminateAck,
    /// Code-Reject.
    CodeReject,
    /// Echo-Request (LCP only).
    EchoRequest,
    /// Echo-Reply (LCP only).
    EchoReply,
    /// A code this stack does not interpret.
    Other(u8),
}

impl CpCode {
    /// The on-wire code number.
    pub fn number(self) -> u8 {
        match self {
            CpCode::ConfigureRequest => 1,
            CpCode::ConfigureAck => 2,
            CpCode::ConfigureNak => 3,
            CpCode::ConfigureReject => 4,
            CpCode::TerminateRequest => 5,
            CpCode::TerminateAck => 6,
            CpCode::CodeReject => 7,
            CpCode::EchoRequest => 9,
            CpCode::EchoReply => 10,
            CpCode::Other(n) => n,
        }
    }

    /// Decodes a code number.
    pub fn from_number(n: u8) -> CpCode {
        match n {
            1 => CpCode::ConfigureRequest,
            2 => CpCode::ConfigureAck,
            3 => CpCode::ConfigureNak,
            4 => CpCode::ConfigureReject,
            5 => CpCode::TerminateRequest,
            6 => CpCode::TerminateAck,
            7 => CpCode::CodeReject,
            9 => CpCode::EchoRequest,
            10 => CpCode::EchoReply,
            other => CpCode::Other(other),
        }
    }
}

/// A control-protocol packet: `code | identifier | length | data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpPacket {
    /// Packet code.
    pub code: CpCode,
    /// Transaction identifier.
    pub id: u8,
    /// Data: options for Configure-*, magic+data for Echo-*, etc.
    pub data: Vec<u8>,
}

impl CpPacket {
    /// Creates a packet.
    pub fn new(code: CpCode, id: u8, data: Vec<u8>) -> CpPacket {
        CpPacket { code, id, data }
    }

    /// Serializes to the CP wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let len = (4 + self.data.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.push(self.code.number());
        out.push(self.id);
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses the CP wire layout.
    pub fn decode(bytes: &[u8]) -> Option<CpPacket> {
        if bytes.len() < 4 {
            return None;
        }
        let len = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        if len < 4 || len > bytes.len() {
            return None;
        }
        Some(CpPacket {
            code: CpCode::from_number(bytes[0]),
            id: bytes[1],
            data: bytes[4..len].to_vec(),
        })
    }
}

/// A configuration option: `type | length | data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpOption {
    /// Option type.
    pub kind: u8,
    /// Option payload (excludes the type/length bytes).
    pub data: Vec<u8>,
}

impl CpOption {
    /// Creates an option.
    pub fn new(kind: u8, data: Vec<u8>) -> CpOption {
        CpOption { kind, data }
    }

    /// Option carrying a big-endian `u16` (e.g. MRU).
    pub fn u16(kind: u8, v: u16) -> CpOption {
        CpOption::new(kind, v.to_be_bytes().to_vec())
    }

    /// Option carrying a big-endian `u32` (e.g. magic number, IP address).
    pub fn u32(kind: u8, v: u32) -> CpOption {
        CpOption::new(kind, v.to_be_bytes().to_vec())
    }

    /// Reads the payload as a `u16`, if it is exactly two bytes.
    pub fn as_u16(&self) -> Option<u16> {
        <[u8; 2]>::try_from(self.data.as_slice()).ok().map(u16::from_be_bytes)
    }

    /// Reads the payload as a `u32`, if it is exactly four bytes.
    pub fn as_u32(&self) -> Option<u32> {
        <[u8; 4]>::try_from(self.data.as_slice()).ok().map(u32::from_be_bytes)
    }
}

/// Serializes an option list.
pub fn encode_options(options: &[CpOption]) -> Vec<u8> {
    let mut out = Vec::new();
    for o in options {
        out.push(o.kind);
        out.push((o.data.len() + 2) as u8);
        out.extend_from_slice(&o.data);
    }
    out
}

/// Parses an option list; `None` on structural damage.
pub fn decode_options(mut bytes: &[u8]) -> Option<Vec<CpOption>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 2 {
            return None;
        }
        let kind = bytes[0];
        let len = bytes[1] as usize;
        if len < 2 || len > bytes.len() {
            return None;
        }
        out.push(CpOption::new(kind, bytes[2..len].to_vec()));
        bytes = &bytes[len..];
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcs16_known_value() {
        // RFC 1662 property: FCS over (data ++ fcs_lo ++ fcs_hi) == 0xF0B8
        // pre-complement; equivalently our complemented fcs16 over the body
        // equals the stored value. Check via a round trip.
        let data = b"\xFF\x03\xC0\x21\x01\x01\x00\x04";
        let fcs = fcs16(data);
        let mut full = data.to_vec();
        full.push((fcs & 0xFF) as u8);
        full.push((fcs >> 8) as u8);
        // CRC over data+fcs gives the magic residue 0xF0B8 before final
        // complement, i.e. !0xF0B8 after it.
        assert_eq!(fcs16(&full), !0xF0B8u16);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = vec![1, 2, 3, 0x7E, 0x7D, 0x11, 200];
        let encoded = encode_frame(protocol::LCP, &payload);
        let mut d = Deframer::new();
        let frames = d.feed(&encoded);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].protocol, protocol::LCP);
        assert_eq!(frames[0].payload, payload);
        assert_eq!(d.errors, 0);
    }

    #[test]
    fn reserved_bytes_are_escaped_on_the_wire() {
        let encoded = encode_frame(protocol::IPV4, &[0x7E, 0x7D, 0x03]);
        // Strip the outer flags; no unescaped flag/escape may remain.
        let inner = &encoded[1..encoded.len() - 1];
        let mut i = 0;
        while i < inner.len() {
            assert_ne!(inner[i], FLAG, "unescaped flag inside frame");
            if inner[i] == ESCAPE {
                i += 1; // the next byte is data
            }
            i += 1;
        }
    }

    #[test]
    fn deframer_handles_split_chunks() {
        let encoded = encode_frame(protocol::IPCP, b"hello world");
        let mut d = Deframer::new();
        let mut frames = Vec::new();
        for chunk in encoded.chunks(3) {
            frames.extend(d.feed(chunk));
        }
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"hello world");
    }

    #[test]
    fn deframer_handles_back_to_back_frames() {
        let mut stream = encode_frame(protocol::LCP, b"a");
        stream.extend(encode_frame(protocol::IPV4, b"b"));
        let mut d = Deframer::new();
        let frames = d.feed(&stream);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].protocol, protocol::LCP);
        assert_eq!(frames[1].protocol, protocol::IPV4);
    }

    #[test]
    fn corrupted_frame_is_counted_not_delivered() {
        let mut encoded = encode_frame(protocol::LCP, b"payload");
        let mid = encoded.len() / 2;
        encoded[mid] ^= 0x55;
        // Ensure we didn't corrupt a flag into existence.
        if encoded[mid] == FLAG || encoded[mid] == ESCAPE {
            encoded[mid] ^= 0x0F;
        }
        let mut d = Deframer::new();
        let frames = d.feed(&encoded);
        assert!(frames.is_empty());
        assert_eq!(d.errors, 1);
    }

    #[test]
    fn runt_frames_rejected() {
        let mut d = Deframer::new();
        // flag, 3 bytes, flag: too short for addr+ctl+proto+fcs.
        let frames = d.feed(&[FLAG, 0xFF, 0x03, 0xC0, FLAG]);
        assert!(frames.is_empty());
        assert_eq!(d.errors, 1);
    }

    #[test]
    fn repeated_flags_are_idle() {
        let mut d = Deframer::new();
        assert!(d.feed(&[FLAG, FLAG, FLAG]).is_empty());
        assert_eq!(d.errors, 0);
    }

    #[test]
    fn cp_packet_roundtrip() {
        let p = CpPacket::new(CpCode::ConfigureRequest, 7, vec![1, 4, 0x05, 0xDC]);
        let bytes = p.encode();
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[1], 7);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 8);
        let q = CpPacket::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn cp_packet_decode_rejects_bad_lengths() {
        assert!(CpPacket::decode(&[1, 0]).is_none());
        assert!(CpPacket::decode(&[1, 0, 0, 2]).is_none()); // len < 4
        assert!(CpPacket::decode(&[1, 0, 0, 99, 0]).is_none()); // len > buf
    }

    #[test]
    fn cp_packet_decode_ignores_trailing_garbage() {
        let mut bytes = CpPacket::new(CpCode::ConfigureAck, 1, vec![]).encode();
        bytes.extend_from_slice(&[0xAA, 0xBB]); // padding after length
        let p = CpPacket::decode(&bytes).unwrap();
        assert_eq!(p.code, CpCode::ConfigureAck);
        assert!(p.data.is_empty());
    }

    #[test]
    fn cp_code_roundtrip() {
        for n in 1..=10u8 {
            assert_eq!(CpCode::from_number(n).number(), n);
        }
        assert_eq!(CpCode::from_number(200), CpCode::Other(200));
    }

    #[test]
    fn options_roundtrip() {
        let opts =
            vec![CpOption::u16(1, 1500), CpOption::u32(5, 0xDEADBEEF), CpOption::new(9, vec![])];
        let bytes = encode_options(&opts);
        let parsed = decode_options(&bytes).unwrap();
        assert_eq!(parsed, opts);
        assert_eq!(parsed[0].as_u16(), Some(1500));
        assert_eq!(parsed[1].as_u32(), Some(0xDEADBEEF));
        assert_eq!(parsed[2].as_u16(), None);
    }

    #[test]
    fn options_decode_rejects_damage() {
        assert!(decode_options(&[1]).is_none()); // truncated header
        assert!(decode_options(&[1, 1]).is_none()); // length < 2
        assert!(decode_options(&[1, 6, 0, 0]).is_none()); // length > buffer
        assert_eq!(decode_options(&[]).unwrap().len(), 0);
    }

    #[test]
    fn ip_payload_frame_roundtrip() {
        // A realistic-size IP packet survives framing.
        let payload: Vec<u8> = (0..1052u32).map(|i| (i % 251) as u8).collect();
        let encoded = encode_frame(protocol::IPV4, &payload);
        let mut d = Deframer::new();
        let frames = d.feed(&encoded);
        assert_eq!(frames[0].payload, payload);
    }
}
