//! The complete PPP session endpoint: phases, framing, keepalive.
//!
//! Combines the sub-protocols into the RFC 1661 phase diagram:
//!
//! ```text
//! Dead -> Establish (LCP) -> Authenticate (PAP, if demanded)
//!      -> Network (IPCP)  -> Open -> Terminating -> Dead
//! ```
//!
//! One [`PppEndpoint`] instance is the host side (the PlanetLab node, via
//! the modem's data mode); a second instance created with
//! [`PppEndpoint::server`] is
//! the network side terminated at the operator's GGSN. The endpoint speaks
//! raw framed bytes on the wire side and IPv4 packets on the network side.

use umtslab_net::wire::Ipv4Address;
use umtslab_sim::time::{Duration, Instant};

use super::frame::{self, encode_frame, CpCode, CpPacket, Deframer};
use super::fsm::{CpFsm, FsmConfig, FsmSignal};
use super::ipcp::IpcpHandler;
use super::lcp::{echo_payload, LcpHandler};
use super::pap::{Credentials, PapMachine, PapState};

/// Session phase (RFC 1661 §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PppPhase {
    /// No session.
    Dead,
    /// LCP negotiating.
    Establish,
    /// PAP in progress.
    Authenticate,
    /// IPCP negotiating.
    Network,
    /// IP traffic may flow.
    Open,
    /// Terminate handshake in progress.
    Terminating,
}

/// Events surfaced to the owner of the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PppEvent {
    /// The session is fully open with the negotiated addresses.
    Up {
        /// Our address.
        local: Ipv4Address,
        /// The peer's address.
        peer: Ipv4Address,
    },
    /// The session went down.
    Down,
    /// Authentication was refused.
    AuthFailed,
}

/// Bytes to transmit plus events and received IP packets from one step.
#[derive(Debug, Default)]
pub struct PppOutput {
    /// Framed bytes to write to the serial line / radio bearer.
    pub tx: Vec<u8>,
    /// Session events.
    pub events: Vec<PppEvent>,
    /// IPv4 packets received from the peer (only once Open).
    pub rx_ipv4: Vec<Vec<u8>>,
}

impl PppOutput {
    fn merge(&mut self, other: PppOutput) {
        self.tx.extend(other.tx);
        self.events.extend(other.events);
        self.rx_ipv4.extend(other.rx_ipv4);
    }
}

/// Network-side session parameters.
#[derive(Debug, Clone)]
pub struct PppServerConfig {
    /// The GGSN-side address.
    pub own_addr: Ipv4Address,
    /// Address to assign to the dialing host.
    pub assign_peer: Ipv4Address,
    /// DNS servers offered.
    pub dns: [Ipv4Address; 2],
    /// Demand PAP authentication.
    pub require_pap: bool,
    /// Expected credentials (`None` = accept anything).
    pub expected_credentials: Option<Credentials>,
}

enum Side {
    Client { credentials: Option<Credentials> },
    Server,
}

/// Keepalive configuration.
#[derive(Debug, Clone)]
pub struct KeepaliveConfig {
    /// Interval between LCP Echo-Requests when the session is open.
    pub interval: Duration,
    /// Unanswered echoes before the link is declared dead.
    pub max_missed: u32,
}

impl Default for KeepaliveConfig {
    fn default() -> Self {
        KeepaliveConfig { interval: Duration::from_secs(10), max_missed: 3 }
    }
}

/// One end of a PPP session.
pub struct PppEndpoint {
    side: Side,
    phase: PppPhase,
    lcp: CpFsm<LcpHandler>,
    pap: Option<PapMachine>,
    ipcp: CpFsm<IpcpHandler>,
    deframer: Deframer,
    keepalive: KeepaliveConfig,
    next_echo: Option<Instant>,
    missed_echoes: u32,
    was_open: bool,
    transitions: u64,
}

impl PppEndpoint {
    /// Creates the dialing-host side. `credentials` are presented if the
    /// network demands PAP; `request_dns` adds DNS negotiation to IPCP.
    pub fn client(magic: u32, credentials: Option<Credentials>, request_dns: bool) -> PppEndpoint {
        PppEndpoint {
            side: Side::Client { credentials },
            phase: PppPhase::Dead,
            lcp: CpFsm::new(LcpHandler::new(magic, false), FsmConfig::default()),
            pap: None,
            ipcp: CpFsm::new(IpcpHandler::client(request_dns), FsmConfig::default()),
            deframer: Deframer::new(),
            keepalive: KeepaliveConfig::default(),
            next_echo: None,
            missed_echoes: 0,
            was_open: false,
            transitions: 0,
        }
    }

    /// Creates the network (GGSN) side.
    pub fn server(magic: u32, config: PppServerConfig) -> PppEndpoint {
        let pap = if config.require_pap {
            Some(PapMachine::server(config.expected_credentials.clone()))
        } else {
            None
        };
        PppEndpoint {
            side: Side::Server,
            phase: PppPhase::Dead,
            lcp: CpFsm::new(LcpHandler::new(magic, config.require_pap), FsmConfig::default()),
            pap,
            ipcp: CpFsm::new(
                IpcpHandler::server(config.own_addr, config.assign_peer, config.dns),
                FsmConfig::default(),
            ),
            deframer: Deframer::new(),
            keepalive: KeepaliveConfig::default(),
            next_echo: None,
            missed_echoes: 0,
            was_open: false,
            transitions: 0,
        }
    }

    /// Overrides the keepalive parameters.
    pub fn set_keepalive(&mut self, cfg: KeepaliveConfig) {
        self.keepalive = cfg;
    }

    /// Current phase.
    pub fn phase(&self) -> PppPhase {
        self.phase
    }

    /// Lifetime count of phase transitions (Dead → Establish → … → Open →
    /// …). A clean dial is a handful; churn here flags link flapping.
    pub fn phase_transitions(&self) -> u64 {
        self.transitions
    }

    /// Moves to `next`, counting the transition if the phase changed.
    fn enter_phase(&mut self, next: PppPhase) {
        if self.phase != next {
            self.phase = next;
            self.transitions += 1;
        }
    }

    /// True when IP traffic may flow.
    pub fn is_open(&self) -> bool {
        self.phase == PppPhase::Open
    }

    /// Our negotiated address (once open).
    pub fn local_addr(&self) -> Option<Ipv4Address> {
        if self.ipcp.handler().local_addr_acked() {
            Some(self.ipcp.handler().local_addr())
        } else {
            None
        }
    }

    /// The peer's negotiated address (once open).
    pub fn peer_addr(&self) -> Option<Ipv4Address> {
        self.ipcp.handler().peer_addr()
    }

    /// DNS servers learned during IPCP (client side).
    pub fn dns_servers(&self) -> [Option<Ipv4Address>; 2] {
        self.ipcp.handler().dns_servers()
    }

    /// The lower layer (modem data mode) came up: start negotiating.
    pub fn start(&mut self, now: Instant) -> PppOutput {
        self.enter_phase(PppPhase::Establish);
        self.was_open = false;
        self.missed_echoes = 0;
        let out = self.lcp.open(now);
        let mut r = PppOutput::default();
        self.absorb_lcp(now, out, &mut r);
        r
    }

    /// Administrative teardown (the `umts stop` path).
    pub fn close(&mut self, now: Instant) -> PppOutput {
        let mut r = PppOutput::default();
        if self.phase == PppPhase::Dead {
            return r;
        }
        self.enter_phase(PppPhase::Terminating);
        self.next_echo = None;
        let out = self.lcp.close(now);
        self.absorb_lcp(now, out, &mut r);
        r
    }

    /// The lower layer vanished (carrier loss): hard reset.
    pub fn carrier_lost(&mut self, _now: Instant) -> PppOutput {
        let mut r = PppOutput::default();
        let _ = self.lcp.lower_down();
        let _ = self.ipcp.lower_down();
        if self.was_open {
            r.events.push(PppEvent::Down);
        }
        self.enter_phase(PppPhase::Dead);
        self.next_echo = None;
        self.was_open = false;
        r
    }

    /// Sends an IPv4 packet; returns the framed bytes to transmit.
    ///
    /// Returns `None` when the session is not open (callers should treat
    /// that as "interface down").
    pub fn send_ipv4(&mut self, wire_bytes: &[u8]) -> Option<Vec<u8>> {
        if self.phase != PppPhase::Open {
            return None;
        }
        Some(encode_frame(frame::protocol::IPV4, wire_bytes))
    }

    /// Feeds received serial/bearer bytes.
    pub fn input_bytes(&mut self, now: Instant, bytes: &[u8]) -> PppOutput {
        let frames = self.deframer.feed(bytes);
        let mut r = PppOutput::default();
        for f in frames {
            match f.protocol {
                frame::protocol::LCP => {
                    if let Some(pkt) = CpPacket::decode(&f.payload) {
                        if pkt.code == CpCode::EchoReply {
                            self.missed_echoes = 0;
                        }
                        let out = self.lcp.input(now, &pkt);
                        self.absorb_lcp(now, out, &mut r);
                    }
                }
                frame::protocol::PAP
                    if (self.phase == PppPhase::Authenticate
                        || self.phase == PppPhase::Establish) =>
                {
                    if let (Some(pap), Some(pkt)) =
                        (self.pap.as_mut(), CpPacket::decode(&f.payload))
                    {
                        let replies = pap.input(now, &pkt);
                        for p in replies {
                            r.tx.extend(encode_frame(frame::protocol::PAP, &p.encode()));
                        }
                        self.after_pap(now, &mut r);
                    }
                }
                frame::protocol::IPCP => {
                    if matches!(self.phase, PppPhase::Network | PppPhase::Open) {
                        if let Some(pkt) = CpPacket::decode(&f.payload) {
                            let out = self.ipcp.input(now, &pkt);
                            self.absorb_ipcp(now, out, &mut r);
                        }
                    }
                }
                frame::protocol::IPV4 if self.phase == PppPhase::Open => {
                    r.rx_ipv4.push(f.payload);
                }
                _ => {
                    // Unknown protocol: LCP Protocol-Reject would go here;
                    // we silently discard, which is adequate for the
                    // protocols this testbed exercises.
                }
            }
        }
        r
    }

    /// The earliest pending timer.
    pub fn next_timeout(&self) -> Option<Instant> {
        let mut t = self.lcp.next_timeout();
        for cand in [
            self.ipcp.next_timeout(),
            self.pap.as_ref().and_then(super::pap::PapMachine::next_timeout),
            self.next_echo,
        ] {
            t = match (t, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
        }
        t
    }

    /// Drives every timer whose deadline has passed.
    pub fn on_timeout(&mut self, now: Instant) -> PppOutput {
        let mut r = PppOutput::default();
        let out = self.lcp.on_timeout(now);
        self.absorb_lcp(now, out, &mut r);
        let out = self.ipcp.on_timeout(now);
        self.absorb_ipcp(now, out, &mut r);
        if let Some(pap) = self.pap.as_mut() {
            let pkts = pap.on_timeout(now);
            for p in pkts {
                r.tx.extend(encode_frame(frame::protocol::PAP, &p.encode()));
            }
            self.after_pap(now, &mut r);
        }
        if let Some(echo_at) = self.next_echo {
            if now >= echo_at && self.phase == PppPhase::Open {
                if self.missed_echoes >= self.keepalive.max_missed {
                    // Link is dead: behave like carrier loss.
                    let down = self.carrier_lost(now);
                    r.merge(down);
                } else {
                    self.missed_echoes += 1;
                    let magic = self.lcp.handler().own_magic();
                    let echo = CpPacket::new(CpCode::EchoRequest, 0, echo_payload(magic));
                    r.tx.extend(encode_frame(frame::protocol::LCP, &echo.encode()));
                    self.next_echo = Some(now + self.keepalive.interval);
                }
            }
        }
        r
    }

    /// Count of damaged frames seen on this session.
    pub fn frame_errors(&self) -> u64 {
        self.deframer.errors
    }

    fn absorb_lcp(&mut self, now: Instant, out: super::fsm::FsmOutput, r: &mut PppOutput) {
        for p in out.packets {
            r.tx.extend(encode_frame(frame::protocol::LCP, &p.encode()));
        }
        for s in out.signals {
            match s {
                FsmSignal::ThisLayerUp => self.lcp_up(now, r),
                FsmSignal::ThisLayerDown | FsmSignal::ThisLayerFinished => {
                    if self.was_open {
                        r.events.push(PppEvent::Down);
                        self.was_open = false;
                    }
                    let _ = self.ipcp.lower_down();
                    self.next_echo = None;
                    let next = if self.lcp.state() == super::fsm::FsmState::Closed
                        || self.lcp.state() == super::fsm::FsmState::Stopped
                    {
                        PppPhase::Dead
                    } else {
                        PppPhase::Terminating
                    };
                    self.enter_phase(next);
                }
            }
        }
    }

    fn lcp_up(&mut self, now: Instant, r: &mut PppOutput) {
        let must_auth = self.lcp.handler().negotiated().must_authenticate;
        let client_creds = match &self.side {
            Side::Client { credentials } => Some(credentials.clone()),
            Side::Server => None,
        };
        match client_creds {
            Some(credentials) => {
                if must_auth {
                    self.enter_phase(PppPhase::Authenticate);
                    let creds = credentials.unwrap_or_else(|| Credentials::new("", ""));
                    let mut pap = PapMachine::client(creds);
                    for p in pap.start(now) {
                        r.tx.extend(encode_frame(frame::protocol::PAP, &p.encode()));
                    }
                    self.pap = Some(pap);
                } else {
                    self.enter_network(now, r);
                }
            }
            None => {
                if self.pap.is_some() {
                    self.enter_phase(PppPhase::Authenticate);
                    if let Some(p) = self.pap.as_mut() {
                        let _ = p.start(now);
                    }
                } else {
                    self.enter_network(now, r);
                }
            }
        }
    }

    fn after_pap(&mut self, now: Instant, r: &mut PppOutput) {
        let Some(pap) = self.pap.as_ref() else { return };
        match pap.state() {
            PapState::Acked if self.phase == PppPhase::Authenticate => {
                self.enter_network(now, r);
            }
            PapState::Failed if self.phase == PppPhase::Authenticate => {
                r.events.push(PppEvent::AuthFailed);
                let out = self.lcp.close(now);
                self.absorb_lcp(now, out, r);
                self.enter_phase(PppPhase::Terminating);
            }
            _ => {}
        }
    }

    fn enter_network(&mut self, now: Instant, r: &mut PppOutput) {
        self.enter_phase(PppPhase::Network);
        let out = self.ipcp.open(now);
        self.absorb_ipcp(now, out, r);
    }

    fn absorb_ipcp(&mut self, now: Instant, out: super::fsm::FsmOutput, r: &mut PppOutput) {
        for p in out.packets {
            r.tx.extend(encode_frame(frame::protocol::IPCP, &p.encode()));
        }
        for s in out.signals {
            match s {
                FsmSignal::ThisLayerUp => {
                    self.enter_phase(PppPhase::Open);
                    self.was_open = true;
                    self.missed_echoes = 0;
                    self.next_echo = Some(now + self.keepalive.interval);
                    let local = self.ipcp.handler().local_addr();
                    let peer = self.ipcp.handler().peer_addr().unwrap_or(Ipv4Address::UNSPECIFIED);
                    r.events.push(PppEvent::Up { local, peer });
                }
                FsmSignal::ThisLayerDown | FsmSignal::ThisLayerFinished => {
                    if self.phase == PppPhase::Open {
                        self.enter_phase(PppPhase::Network);
                        if self.was_open {
                            r.events.push(PppEvent::Down);
                            self.was_open = false;
                        }
                        self.next_echo = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn server_config(require_pap: bool) -> PppServerConfig {
        PppServerConfig {
            own_addr: a("10.64.0.1"),
            assign_peer: a("10.64.3.7"),
            dns: [a("10.64.0.53"), a("10.64.0.54")],
            require_pap,
            expected_credentials: if require_pap {
                Some(Credentials::new("web", "web"))
            } else {
                None
            },
        }
    }

    /// Shuttles bytes between the two endpoints until quiescent.
    fn pump(
        client: &mut PppEndpoint,
        server: &mut PppEndpoint,
        now: Instant,
    ) -> (PppOutput, PppOutput) {
        let mut client_acc = PppOutput::default();
        let mut server_acc = PppOutput::default();
        let mut to_server: Vec<u8> = Vec::new();
        let mut to_client: Vec<u8> = Vec::new();
        for _ in 0..50 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            let bytes = std::mem::take(&mut to_server);
            if !bytes.is_empty() {
                let out = server.input_bytes(now, &bytes);
                to_client.extend(out.tx.iter());
                server_acc.events.extend(out.events.clone());
                server_acc.rx_ipv4.extend(out.rx_ipv4.clone());
            }
            let bytes = std::mem::take(&mut to_client);
            if !bytes.is_empty() {
                let out = client.input_bytes(now, &bytes);
                to_server.extend(out.tx.iter());
                client_acc.events.extend(out.events.clone());
                client_acc.rx_ipv4.extend(out.rx_ipv4.clone());
            }
        }
        (client_acc, server_acc)
    }

    fn bring_up(require_pap: bool) -> (PppEndpoint, PppEndpoint, PppOutput, PppOutput) {
        let mut client =
            PppEndpoint::client(0x1234_5678, Some(Credentials::new("web", "web")), true);
        let mut server = PppEndpoint::server(0x8765_4321, server_config(require_pap));
        let now = Instant::ZERO;
        let c0 = client.start(now);
        let s0 = server.start(now);
        // Exchange initial volleys.
        let mut to_server = c0.tx;
        let mut to_client = s0.tx;
        let mut client_acc = PppOutput::default();
        let mut server_acc = PppOutput::default();
        for _ in 0..50 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            let out = server.input_bytes(now, &std::mem::take(&mut to_server));
            to_client.extend(out.tx);
            server_acc.events.extend(out.events);
            let out = client.input_bytes(now, &std::mem::take(&mut to_client));
            to_server.extend(out.tx);
            client_acc.events.extend(out.events);
        }
        (client, server, client_acc, server_acc)
    }

    #[test]
    fn session_opens_without_auth() {
        let (client, server, c_ev, s_ev) = bring_up(false);
        assert!(client.is_open(), "client phase: {:?}", client.phase());
        assert!(server.is_open(), "server phase: {:?}", server.phase());
        assert!(c_ev.events.iter().any(|e| matches!(
            e,
            PppEvent::Up { local, peer }
                if *local == a("10.64.3.7") && *peer == a("10.64.0.1")
        )));
        assert!(s_ev.events.iter().any(|e| matches!(e, PppEvent::Up { .. })));
        assert_eq!(client.local_addr(), Some(a("10.64.3.7")));
        assert_eq!(client.peer_addr(), Some(a("10.64.0.1")));
    }

    #[test]
    fn session_opens_with_pap() {
        let (client, server, c_ev, _s_ev) = bring_up(true);
        assert!(client.is_open());
        assert!(server.is_open());
        assert!(c_ev.events.iter().any(|e| matches!(e, PppEvent::Up { .. })));
        assert_eq!(client.dns_servers(), [Some(a("10.64.0.53")), Some(a("10.64.0.54"))]);
    }

    #[test]
    fn bad_credentials_fail_auth() {
        let mut client = PppEndpoint::client(1, Some(Credentials::new("bad", "creds")), false);
        let mut server = PppEndpoint::server(2, server_config(true));
        let now = Instant::ZERO;
        let c0 = client.start(now);
        let s0 = server.start(now);
        let mut to_server = c0.tx;
        let mut to_client = s0.tx;
        let mut client_events = Vec::new();
        for _ in 0..50 {
            if to_server.is_empty() && to_client.is_empty() {
                break;
            }
            let out = server.input_bytes(now, &std::mem::take(&mut to_server));
            to_client.extend(out.tx);
            let out = client.input_bytes(now, &std::mem::take(&mut to_client));
            to_server.extend(out.tx);
            client_events.extend(out.events);
        }
        assert!(client_events.contains(&PppEvent::AuthFailed));
        assert!(!client.is_open());
    }

    #[test]
    fn ip_flows_end_to_end_when_open() {
        let (mut client, mut server, _, _) = bring_up(false);
        let ip_packet = vec![0x45, 0, 0, 20, 0, 0, 0, 0, 64, 17, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        let framed = client.send_ipv4(&ip_packet).expect("session open");
        let out = server.input_bytes(Instant::from_secs(1), &framed);
        assert_eq!(out.rx_ipv4, vec![ip_packet.clone()]);
        // And the reverse direction.
        let framed = server.send_ipv4(&ip_packet).unwrap();
        let out = client.input_bytes(Instant::from_secs(1), &framed);
        assert_eq!(out.rx_ipv4.len(), 1);
    }

    #[test]
    fn ip_rejected_when_not_open() {
        let mut client = PppEndpoint::client(1, None, false);
        assert!(client.send_ipv4(&[0u8; 20]).is_none());
        // Bytes arriving before open are not delivered as IP.
        let framed = encode_frame(frame::protocol::IPV4, &[0u8; 20]);
        let out = client.input_bytes(Instant::ZERO, &framed);
        assert!(out.rx_ipv4.is_empty());
    }

    #[test]
    fn administrative_close_brings_both_down() {
        let (mut client, mut server, _, _) = bring_up(false);
        let now = Instant::from_secs(5);
        let out = client.close(now);
        assert!(out.events.contains(&PppEvent::Down));
        let out_s = server.input_bytes(now, &out.tx);
        assert!(out_s.events.contains(&PppEvent::Down));
        assert!(!server.is_open());
        // Terminate-Ack flows back and the client reaches Dead.
        let out_c = client.input_bytes(now, &out_s.tx);
        let _ = out_c;
        assert_eq!(client.phase(), PppPhase::Dead);
    }

    #[test]
    fn carrier_loss_resets_immediately() {
        let (mut client, _server, _, _) = bring_up(false);
        let out = client.carrier_lost(Instant::from_secs(9));
        assert!(out.events.contains(&PppEvent::Down));
        assert_eq!(client.phase(), PppPhase::Dead);
        assert!(client.next_timeout().is_none());
    }

    #[test]
    fn keepalive_echoes_flow_and_reset_miss_counter() {
        let (mut client, mut server, _, _) = bring_up(false);
        client.set_keepalive(KeepaliveConfig { interval: Duration::from_secs(10), max_missed: 3 });
        let t = client.next_timeout().expect("echo timer armed");
        let out = client.on_timeout(t);
        assert!(!out.tx.is_empty(), "echo request sent");
        // Server replies to the echo.
        let reply = server.input_bytes(t, &out.tx);
        assert!(!reply.tx.is_empty(), "echo reply sent");
        let _ = client.input_bytes(t, &reply.tx);
        assert_eq!(client.missed_echoes, 0);
        assert!(client.is_open());
    }

    #[test]
    fn missed_keepalives_kill_the_session() {
        let (mut client, _server, _, _) = bring_up(false);
        let mut events = Vec::new();
        let mut guard = 0;
        while client.is_open() && guard < 20 {
            guard += 1;
            let Some(t) = client.next_timeout() else { break };
            let out = client.on_timeout(t);
            events.extend(out.events);
        }
        assert!(events.contains(&PppEvent::Down));
        assert_eq!(client.phase(), PppPhase::Dead);
    }

    #[test]
    fn corrupted_bytes_are_counted_and_ignored() {
        let (mut client, mut server, _, _) = bring_up(false);
        let mut framed = client.send_ipv4(&[0x45u8; 24]).unwrap();
        let mid = framed.len() / 2;
        framed[mid] ^= 0x44;
        if framed[mid] == 0x7E || framed[mid] == 0x7D {
            framed[mid] ^= 0x0F;
        }
        let out = server.input_bytes(Instant::from_secs(1), &framed);
        assert!(out.rx_ipv4.is_empty());
        assert_eq!(server.frame_errors(), 1);
        assert!(server.is_open(), "a damaged frame must not kill the session");
    }

    #[test]
    fn pump_helper_is_quiescent_after_open() {
        let (mut client, mut server, _, _) = bring_up(false);
        let (c, s) = pump(&mut client, &mut server, Instant::from_secs(2));
        assert!(c.events.is_empty());
        assert!(s.events.is_empty());
    }
}
