//! The complete UMTS attachment: card, dialer, PPP session and radio path.
//!
//! [`UmtsAttachment`] packages everything between the PlanetLab node's
//! `ppp0` interface and the operator's internet edge:
//!
//! ```text
//!  node          serial        modem        radio          operator core
//!  dialer  <---- tty ---->  AT machine  ~~ signaling ~~>  GGSN PPP server
//!  pppd    <---- tty ---->  data mode   ~~ bearers   ~~>  conntrack -> internet
//! ```
//!
//! The *dialer* replays the `comgt` + `wvdial` workflow over the serial
//! line: probe the card, wait for registration, set the APN, dial, and on
//! `CONNECT` hand the line to the PPP client. PPP negotiation bytes travel
//! over a fixed-latency signaling channel to the GGSN-side PPP server.
//! Once IPCP completes, the data plane flows through the RRC-granted
//! bearers with their queueing, jitter and loss — and every data packet
//! really is serialized to IPv4+UDP bytes, PPP-framed, deframed and
//! checksum-validated on the far side.

use std::collections::VecDeque;

use umtslab_net::packet::Packet;
use umtslab_net::wire::Ipv4Address;
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

use crate::at::{DeviceProfile, Modem, ModemMode, ModemOutput};
use crate::bearer::{BearerStats, UmtsBearer};
use crate::operator::{AddressPool, Conntrack, OperatorProfile};
use crate::ppp::{Credentials, PppEndpoint, PppEvent, PppServerConfig};
use crate::rrc::{RrcController, RrcEvent, RrcState};
use crate::serial::{LineAssembler, SerialLine};

/// Why a connection attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DialError {
    /// The SIM demands a PIN.
    SimLocked,
    /// Registration was denied by the network.
    RegistrationDenied,
    /// Registration did not complete in time.
    RegistrationTimeout,
    /// The data call was refused (`NO CARRIER`).
    NoCarrier,
    /// PAP authentication failed.
    AuthFailed,
    /// PPP negotiation did not complete in time.
    PppTimeout,
}

/// Connection lifecycle events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UmtsEvent {
    /// The session is up with the negotiated addresses.
    Connected {
        /// Address assigned to the node (`ppp0` local).
        local: Ipv4Address,
        /// The GGSN-side peer address.
        peer: Ipv4Address,
    },
    /// The connection attempt failed.
    Failed(DialError),
    /// An established session went down.
    Disconnected,
}

/// A session-level fault injected against the live UMTS stack.
///
/// These are the failure modes the paper's management scripts
/// (`umts start`/`umts stop`, pppd supervision, AT watchdogs) exist to
/// survive. They attack the *session* — modem firmware, AT dialogue,
/// authentication, PPP, radio resource control — and are orthogonal to
/// the packet-level faults (`umtslab-net`'s loss/corruption models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionFault {
    /// The modem firmware hard-hangs: it eats every byte and emits
    /// nothing until power-cycled with [`UmtsAttachment::reset_modem`].
    ModemHang,
    /// The next AT command is silently lost on the serial bus; the
    /// dialer's stage deadline is its only recourse.
    AtTimeout,
    /// The GGSN rejects PAP authentication on the *next* dial attempt
    /// (transient RADIUS failure); the attempt after that succeeds.
    PapReject,
    /// The network terminates the PPP session with a real LCP
    /// Terminate-Request (the classic `pppd` "Modem hangup" log line).
    PppTerminate,
    /// The RNC releases the RRC connection to Idle; traffic must pay a
    /// full promotion before anything flows again.
    RrcRelease,
    /// A higher-priority user preempts the dedicated bearer: queued
    /// packets are lost and the grant steps down one level.
    BearerPreemption,
    /// The operator detaches the subscriber (coverage loss): the data
    /// call drops and registration starts over.
    OperatorDetach,
}

impl SessionFault {
    /// Every fault kind, in declaration order.
    pub const ALL: [SessionFault; 7] = [
        SessionFault::ModemHang,
        SessionFault::AtTimeout,
        SessionFault::PapReject,
        SessionFault::PppTerminate,
        SessionFault::RrcRelease,
        SessionFault::BearerPreemption,
        SessionFault::OperatorDetach,
    ];

    /// Stable snake_case registry key, as used by declarative experiment
    /// packs (`umtslab-pack`) to name faults in a campaign mix.
    pub fn key(self) -> &'static str {
        match self {
            SessionFault::ModemHang => "modem_hang",
            SessionFault::AtTimeout => "at_timeout",
            SessionFault::PapReject => "pap_reject",
            SessionFault::PppTerminate => "ppp_terminate",
            SessionFault::RrcRelease => "rrc_release",
            SessionFault::BearerPreemption => "bearer_preemption",
            SessionFault::OperatorDetach => "operator_detach",
        }
    }

    /// Inverse of [`SessionFault::key`].
    pub fn from_key(key: &str) -> Option<SessionFault> {
        SessionFault::ALL.into_iter().find(|f| f.key() == key)
    }
}

/// Data-plane outputs from a poll.
#[derive(Debug)]
pub enum UmtsData {
    /// A subscriber packet leaving the operator toward the internet.
    ToInternet(Packet),
    /// A packet arriving at the node on `ppp0`.
    ToHost(Packet),
}

/// Result of one [`UmtsAttachment::poll`].
#[derive(Debug, Default)]
pub struct UmtsPollOutput {
    /// Lifecycle events.
    pub events: Vec<UmtsEvent>,
    /// Packets due now.
    pub data: Vec<UmtsData>,
}

/// Outcome of offering an uplink packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UplinkOutcome {
    /// Queued on the bearer.
    Queued,
    /// Dropped: bearer buffer overflow.
    DroppedOverflow,
    /// Rejected: the session is not connected.
    NotConnected,
}

/// Outcome of delivering a downlink packet from the internet side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownlinkOutcome {
    /// Queued on the bearer.
    Queued,
    /// Dropped by the operator firewall (no matching outbound flow).
    BlockedByFirewall,
    /// Dropped: bearer buffer overflow.
    DroppedOverflow,
    /// Rejected: the session is not connected / address mismatch.
    NotConnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DialerState {
    Idle,
    Probe,
    CheckPin,
    WaitRegistration,
    SetApn,
    Dial,
    PppNegotiating,
    Connected,
    Terminating,
    Failed,
}

/// Fixed-latency byte channel between the modem and the GGSN (the
/// signaling radio bearer carrying PPP negotiation).
#[derive(Debug)]
struct SignalingChannel {
    delay: Duration,
    to_ggsn: VecDeque<(Instant, Vec<u8>)>,
    to_host: VecDeque<(Instant, Vec<u8>)>,
}

impl SignalingChannel {
    fn new(delay: Duration) -> SignalingChannel {
        SignalingChannel { delay, to_ggsn: VecDeque::new(), to_host: VecDeque::new() }
    }

    fn push_to_ggsn(&mut self, now: Instant, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.to_ggsn.push_back((now + self.delay, bytes));
        }
    }

    fn push_to_host(&mut self, now: Instant, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.to_host.push_back((now + self.delay, bytes));
        }
    }

    fn pop_due_ggsn(&mut self, now: Instant) -> Vec<u8> {
        Self::pop_due(&mut self.to_ggsn, now)
    }

    fn pop_due_host(&mut self, now: Instant) -> Vec<u8> {
        Self::pop_due(&mut self.to_host, now)
    }

    fn pop_due(q: &mut VecDeque<(Instant, Vec<u8>)>, now: Instant) -> Vec<u8> {
        let mut out = Vec::new();
        while let Some(&(at, _)) = q.front() {
            if at <= now {
                out.extend(q.pop_front().expect("front exists").1);
            } else {
                break;
            }
        }
        out
    }

    fn next_activity(&self) -> Option<Instant> {
        let a = self.to_ggsn.front().map(|&(t, _)| t);
        let b = self.to_host.front().map(|&(t, _)| t);
        min_opt(a, b)
    }

    fn clear(&mut self) {
        self.to_ggsn.clear();
        self.to_host.clear();
    }
}

fn min_opt(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Pending data-plane delivery.
#[derive(Debug)]
enum PendingData {
    ToInternet(Packet),
    ToHost(Packet),
}

/// The full UMTS attachment of one node to one operator.
pub struct UmtsAttachment {
    profile: OperatorProfile,
    credentials: Option<Credentials>,
    serial: SerialLine,
    modem: Modem,
    modem_lines: LineAssembler,
    host_lines: LineAssembler,
    dialer: DialerState,
    /// Deadline for the current dialer stage.
    dialer_deadline: Option<Instant>,
    /// Next registration poll.
    reg_poll_at: Option<Instant>,
    reg_polls: u32,
    ppp_client: Option<PppEndpoint>,
    ppp_server: Option<PppEndpoint>,
    signaling: SignalingChannel,
    rrc: RrcController,
    uplink: UmtsBearer,
    downlink: UmtsBearer,
    conntrack: Conntrack,
    pool: AddressPool,
    local_addr: Option<Ipv4Address>,
    peer_addr: Option<Ipv4Address>,
    pending: VecDeque<(Instant, PendingData)>,
    rng: SimRng,
    /// One-shot: the next dial's PAP exchange is forced to fail.
    force_auth_reject: bool,
    /// Lifecycle events produced outside `poll` (fault injection),
    /// surfaced at the head of the next poll's event list.
    queued_events: Vec<UmtsEvent>,
}

/// Maximum `AT+CREG?` polls before declaring registration timeout
/// (matching `comgt`'s bounded wait).
const MAX_REG_POLLS: u32 = 40;
/// Interval between registration polls.
const REG_POLL_INTERVAL: Duration = Duration::from_millis(500);
/// Budget for PPP negotiation after `CONNECT`.
const PPP_TIMEOUT: Duration = Duration::from_secs(30);

impl UmtsAttachment {
    /// Creates a powered-on attachment at `now` (modem begins registering
    /// in the background; no connection is attempted until
    /// [`UmtsAttachment::start`]).
    pub fn new(
        profile: OperatorProfile,
        device: DeviceProfile,
        credentials: Option<Credentials>,
        seed: u64,
        now: Instant,
    ) -> UmtsAttachment {
        let mut rng = SimRng::seed_from_u64(seed);
        let modem = Modem::power_on(device, profile.network_signal(), now);
        let rrc = RrcController::new(profile.rrc.clone(), now);
        let uplink = UmtsBearer::new(profile.uplink.clone());
        let downlink = UmtsBearer::new(profile.downlink.clone());
        let signaling = SignalingChannel::new(profile.signaling_delay);
        let pool = AddressPool::new(profile.pool);
        let conntrack = Conntrack::new(Duration::from_secs(60));
        let _ = rng.next_u64();
        UmtsAttachment {
            profile,
            credentials,
            serial: SerialLine::new(460_800),
            modem,
            modem_lines: LineAssembler::new(),
            host_lines: LineAssembler::new(),
            dialer: DialerState::Idle,
            dialer_deadline: None,
            reg_poll_at: None,
            reg_polls: 0,
            ppp_client: None,
            ppp_server: None,
            signaling,
            rrc,
            uplink,
            downlink,
            conntrack,
            pool,
            local_addr: None,
            peer_addr: None,
            pending: VecDeque::new(),
            rng,
            force_auth_reject: false,
            queued_events: Vec::new(),
        }
    }

    /// True once the data plane is usable.
    pub fn is_connected(&self) -> bool {
        self.dialer == DialerState::Connected
    }

    /// The address assigned to the node, once connected.
    pub fn local_addr(&self) -> Option<Ipv4Address> {
        self.local_addr
    }

    /// The GGSN peer address, once connected.
    pub fn peer_addr(&self) -> Option<Ipv4Address> {
        self.peer_addr
    }

    /// The operator profile in use.
    pub fn profile(&self) -> &OperatorProfile {
        &self.profile
    }

    /// Current RRC state (for `umts status` style introspection).
    pub fn rrc_state(&self) -> RrcState {
        self.rrc.state()
    }

    /// Lifetime count of RRC state transitions (promotions, grant
    /// upgrades, demotions).
    pub fn rrc_transitions(&self) -> u64 {
        self.rrc.transitions()
    }

    /// Cumulative per-state RRC residence times up to `now`, plus
    /// Idle→DCH promotion latency totals.
    pub fn rrc_dwell(&self, now: umtslab_sim::time::Instant) -> crate::rrc::RrcDwell {
        self.rrc.dwell(now)
    }

    /// Lifetime count of PPP phase transitions on the host (client) side
    /// of the session. Zero until a dial has begun.
    pub fn ppp_transitions(&self) -> u64 {
        self.ppp_client.as_ref().map_or(0, super::ppp::endpoint::PppEndpoint::phase_transitions)
    }

    /// Uplink bearer counters.
    pub fn uplink_stats(&self) -> BearerStats {
        self.uplink.stats()
    }

    /// Downlink bearer counters.
    pub fn downlink_stats(&self) -> BearerStats {
        self.downlink.stats()
    }

    /// Uplink backlog in bytes (drives the RRC upgrade heuristic).
    pub fn uplink_backlog(&self) -> usize {
        self.uplink.backlog_bytes()
    }

    /// Begins the connection workflow (the `umts start` back-end action).
    pub fn start(&mut self, now: Instant) {
        if self.dialer != DialerState::Idle && self.dialer != DialerState::Failed {
            return;
        }
        self.dialer = DialerState::Probe;
        self.dialer_deadline = Some(now + Duration::from_secs(10));
        self.serial.host_write(now, b"AT\r");
    }

    /// Begins an orderly teardown (the `umts stop` back-end action).
    pub fn stop(&mut self, now: Instant) {
        match self.dialer {
            DialerState::Connected | DialerState::PppNegotiating => {
                self.dialer = DialerState::Terminating;
                self.dialer_deadline = Some(now + Duration::from_secs(10));
                if let Some(ppp) = self.ppp_client.as_mut() {
                    let out = ppp.close(now);
                    self.route_client_bytes(now, out.tx);
                }
            }
            DialerState::Idle | DialerState::Failed => {}
            _ => {
                // Mid-dial: abort.
                self.finish_teardown(now);
            }
        }
    }

    /// True if the modem firmware is hung and needs a power cycle
    /// ([`UmtsAttachment::reset_modem`]) before any dial can succeed.
    pub fn modem_is_hung(&self) -> bool {
        self.modem.is_hung()
    }

    /// Injects a session-level fault against the live stack. Effects
    /// surface through the normal event flow: faults that kill an
    /// established session eventually produce [`UmtsEvent::Disconnected`]
    /// (or [`UmtsEvent::Failed`] mid-dial), exactly as a real failure
    /// would.
    pub fn inject_fault(&mut self, now: Instant, fault: SessionFault) {
        match fault {
            SessionFault::ModemHang => self.modem.hang(),
            SessionFault::AtTimeout => self.modem.swallow_next_command(),
            SessionFault::PapReject => self.force_auth_reject = true,
            SessionFault::PppTerminate => {
                if self.dialer == DialerState::Connected {
                    if let Some(server) = self.ppp_server.as_mut() {
                        let r = server.close(now);
                        self.signaling.push_to_host(now, r.tx);
                    }
                }
            }
            SessionFault::RrcRelease => {
                self.rrc.release(now);
                self.apply_rrc(now);
            }
            SessionFault::BearerPreemption => {
                self.uplink.flush();
                self.downlink.flush();
                self.rrc.preempt(now);
                self.apply_rrc(now);
            }
            SessionFault::OperatorDetach => {
                self.modem.detach(now);
                if matches!(
                    self.dialer,
                    DialerState::Connected | DialerState::PppNegotiating | DialerState::Terminating
                ) {
                    self.finish_teardown(now);
                    self.queued_events.push(UmtsEvent::Disconnected);
                }
            }
        }
    }

    /// Power-cycles the modem — the watchdog reset the paper's management
    /// scripts issue when the card stops answering. Only possible while no
    /// connection attempt is in flight (Idle/Failed); the card re-registers
    /// from scratch afterwards. This is the sole cure for
    /// [`SessionFault::ModemHang`].
    pub fn reset_modem(&mut self, now: Instant) {
        if self.dialer != DialerState::Idle && self.dialer != DialerState::Failed {
            return;
        }
        self.modem =
            Modem::power_on(self.modem.profile().clone(), self.profile.network_signal(), now);
        self.modem_lines = LineAssembler::new();
        self.host_lines = LineAssembler::new();
        self.serial = SerialLine::new(460_800);
        self.signaling.clear();
    }

    /// Offers a node-originated packet to the uplink (`ppp0` egress).
    pub fn send_uplink(&mut self, now: Instant, packet: Packet) -> UplinkOutcome {
        if self.dialer != DialerState::Connected {
            return UplinkOutcome::NotConnected;
        }
        // Honest byte path: serialize, PPP-frame, deframe, re-validate.
        let Some(validated) = self.through_ppp_data_path(&packet) else {
            return UplinkOutcome::NotConnected;
        };
        self.rrc.on_traffic(now, self.uplink.backlog_bytes() + validated.wire_len());
        self.apply_rrc(now);
        match self.uplink.enqueue(now, validated) {
            Ok(()) => UplinkOutcome::Queued,
            Err(_) => UplinkOutcome::DroppedOverflow,
        }
    }

    /// Delivers an internet-side packet destined to the subscriber.
    pub fn deliver_downlink(&mut self, now: Instant, packet: Packet) -> DownlinkOutcome {
        if self.dialer != DialerState::Connected {
            return DownlinkOutcome::NotConnected;
        }
        if Some(packet.dst.addr) != self.local_addr {
            return DownlinkOutcome::NotConnected;
        }
        if self.profile.inbound_firewall && !self.conntrack.allow_inbound(&packet, now) {
            return DownlinkOutcome::BlockedByFirewall;
        }
        self.rrc.on_traffic(now, self.uplink.backlog_bytes());
        self.apply_rrc(now);
        match self.downlink.enqueue(now, packet) {
            Ok(()) => DownlinkOutcome::Queued,
            Err(_) => DownlinkOutcome::DroppedOverflow,
        }
    }

    /// The earliest instant at which [`UmtsAttachment::poll`] has work.
    pub fn next_wakeup(&self) -> Option<Instant> {
        let mut t = self.serial.next_activity();
        t = min_opt(t, self.modem.next_wakeup());
        t = min_opt(t, self.signaling.next_activity());
        t = min_opt(t, self.reg_poll_at);
        t = min_opt(t, self.dialer_deadline);
        t = min_opt(
            t,
            self.ppp_client.as_ref().and_then(super::ppp::endpoint::PppEndpoint::next_timeout),
        );
        t = min_opt(
            t,
            self.ppp_server.as_ref().and_then(super::ppp::endpoint::PppEndpoint::next_timeout),
        );
        t = min_opt(t, self.rrc.next_wakeup());
        t = min_opt(t, self.uplink.next_service());
        t = min_opt(t, self.downlink.next_service());
        t = min_opt(t, self.pending.front().map(|&(at, _)| at));
        t
    }

    /// Advances every sub-machine to `now` and collects outputs.
    pub fn poll(&mut self, now: Instant) -> UmtsPollOutput {
        let mut out = UmtsPollOutput::default();
        out.events.append(&mut self.queued_events);
        // Iterate until quiescent at `now`: serial and signaling hops can
        // enable each other within the same instant.
        for _ in 0..64 {
            let mut progressed = false;
            progressed |= self.pump_modem(now);
            progressed |= self.pump_host(now, &mut out);
            progressed |= self.pump_signaling(now, &mut out);
            if !progressed {
                break;
            }
        }
        self.pump_timers(now, &mut out);
        self.pump_radio(now, &mut out);
        self.drain_pending(now, &mut out);
        out
    }

    // --- internals ------------------------------------------------------

    /// Runs one data packet through real serialization + PPP framing +
    /// deframing + checksum validation, preserving simulation metadata.
    fn through_ppp_data_path(&mut self, packet: &Packet) -> Option<Packet> {
        let ppp = self.ppp_client.as_mut()?;
        let wire = packet.to_wire().ok()?;
        let framed = ppp.send_ipv4(&wire)?;
        // Deframe on the far side (shared codec; the GGSN would do this).
        let mut deframer = crate::ppp::Deframer::new();
        let frames = deframer.feed(&framed);
        let frame = frames.into_iter().next()?;
        let mut parsed = Packet::from_wire(&frame.payload, packet.id, packet.created).ok()?;
        parsed.mark = packet.mark;
        parsed.corrupted = packet.corrupted;
        Some(parsed)
    }

    fn pump_modem(&mut self, now: Instant) -> bool {
        let mut progressed = false;
        // Host → modem bytes.
        let bytes = self.serial.modem_read(now);
        if !bytes.is_empty() {
            progressed = true;
            if self.modem.is_hung() {
                // A hung modem eats bytes without acting on them.
            } else if self.modem.mode() == ModemMode::Data {
                self.signaling.push_to_ggsn(now, bytes);
            } else {
                for line in self.modem_lines.feed(&bytes) {
                    self.modem.input_line(now, &line);
                }
            }
        }
        // Modem outputs → host.
        for o in self.modem.poll(now) {
            progressed = true;
            match o {
                ModemOutput::Line(l) => {
                    let mut data = l.into_bytes();
                    data.extend_from_slice(b"\r\n");
                    self.serial.modem_write(now, &data);
                }
                ModemOutput::EnterDataMode | ModemOutput::ExitDataMode => {}
            }
        }
        progressed
    }

    fn pump_host(&mut self, now: Instant, out: &mut UmtsPollOutput) -> bool {
        let bytes = self.serial.host_read(now);
        if bytes.is_empty() {
            return false;
        }
        if self.dialer == DialerState::PppNegotiating
            || self.dialer == DialerState::Connected
            || self.dialer == DialerState::Terminating
        {
            // The line carries PPP: feed the client endpoint.
            if let Some(ppp) = self.ppp_client.as_mut() {
                let r = ppp.input_bytes(now, &bytes);
                let tx = r.tx;
                let events = r.events;
                self.route_client_bytes(now, tx);
                self.handle_client_events(now, events, out);
            }
            return true;
        }
        // The line carries AT responses: feed the dialer.
        for line in self.host_lines.feed(&bytes) {
            self.dialer_response(now, &line, out);
        }
        true
    }

    fn pump_signaling(&mut self, now: Instant, out: &mut UmtsPollOutput) -> bool {
        let mut progressed = false;
        let ggsn_bytes = self.signaling.pop_due_ggsn(now);
        if !ggsn_bytes.is_empty() {
            progressed = true;
            if let Some(server) = self.ppp_server.as_mut() {
                let r = server.input_bytes(now, &ggsn_bytes);
                self.signaling.push_to_host(now, r.tx);
                // Server-side events need no routing; the client side
                // drives the lifecycle.
            }
        }
        let host_bytes = self.signaling.pop_due_host(now);
        if !host_bytes.is_empty() {
            progressed = true;
            // Radio → modem → serial → host.
            if self.modem.mode() == ModemMode::Data && !self.modem.is_hung() {
                self.serial.modem_write(now, &host_bytes);
            }
        }
        let _ = out;
        progressed
    }

    fn pump_timers(&mut self, now: Instant, out: &mut UmtsPollOutput) {
        // Registration poll loop.
        if let Some(at) = self.reg_poll_at {
            if now >= at && self.dialer == DialerState::WaitRegistration {
                self.reg_poll_at = None;
                if self.reg_polls >= MAX_REG_POLLS {
                    self.fail(now, DialError::RegistrationTimeout, out);
                } else {
                    self.reg_polls += 1;
                    self.serial.host_write(now, b"AT+CREG?\r");
                }
            }
        }
        // Stage deadline.
        if let Some(at) = self.dialer_deadline {
            if now >= at {
                self.dialer_deadline = None;
                match self.dialer {
                    DialerState::PppNegotiating => self.fail(now, DialError::PppTimeout, out),
                    DialerState::Terminating => {
                        self.finish_teardown(now);
                        out.events.push(UmtsEvent::Disconnected);
                    }
                    DialerState::Probe
                    | DialerState::CheckPin
                    | DialerState::SetApn
                    | DialerState::Dial => {
                        self.fail(now, DialError::NoCarrier, out);
                    }
                    _ => {}
                }
            }
        }
        // PPP timers.
        if let Some(ppp) = self.ppp_client.as_mut() {
            if ppp.next_timeout().is_some_and(|t| t <= now) {
                let r = ppp.on_timeout(now);
                let tx = r.tx;
                let events = r.events;
                self.route_client_bytes(now, tx);
                self.handle_client_events(now, events, out);
            }
        }
        if let Some(server) = self.ppp_server.as_mut() {
            if server.next_timeout().is_some_and(|t| t <= now) {
                let r = server.on_timeout(now);
                self.signaling.push_to_host(now, r.tx);
            }
        }
    }

    fn pump_radio(&mut self, now: Instant, _out: &mut UmtsPollOutput) {
        self.apply_rrc(now);
        if self.uplink.next_service().is_some_and(|t| t <= now) {
            let served = self.uplink.service(now, &mut self.rng);
            for (at, pkt) in served {
                self.conntrack.note_outbound(&pkt, at);
                let exit = at + self.profile.core_delay;
                self.push_pending(exit, PendingData::ToInternet(pkt));
            }
        }
        if self.downlink.next_service().is_some_and(|t| t <= now) {
            let served = self.downlink.service(now, &mut self.rng);
            for (at, pkt) in served {
                self.push_pending(at, PendingData::ToHost(pkt));
            }
        }
    }

    fn apply_rrc(&mut self, now: Instant) {
        for ev in self.rrc.poll(now) {
            match ev {
                RrcEvent::PromotedToDch | RrcEvent::GrantUpgraded | RrcEvent::DemotedToFach => {}
                RrcEvent::DemotedToIdle => {}
            }
        }
        let (up, down) = match self.rrc.grant() {
            Some(g) => (g.uplink_bps, g.downlink_bps),
            None => (0, 0),
        };
        if self.uplink.rate_bps() != up {
            self.uplink.set_rate(now, up);
        }
        if self.downlink.rate_bps() != down {
            self.downlink.set_rate(now, down);
        }
    }

    fn push_pending(&mut self, at: Instant, data: PendingData) {
        // Deliveries from one bearer are generated in order; merge the two
        // streams by insertion.
        let pos = self.pending.iter().position(|&(t, _)| t > at).unwrap_or(self.pending.len());
        self.pending.insert(pos, (at, data));
    }

    fn drain_pending(&mut self, now: Instant, out: &mut UmtsPollOutput) {
        while let Some(&(at, _)) = self.pending.front() {
            if at > now {
                break;
            }
            let (_, data) = self.pending.pop_front().expect("front exists");
            out.data.push(match data {
                PendingData::ToInternet(p) => UmtsData::ToInternet(p),
                PendingData::ToHost(p) => UmtsData::ToHost(p),
            });
        }
    }

    fn route_client_bytes(&mut self, now: Instant, tx: Vec<u8>) {
        if !tx.is_empty() {
            self.serial.host_write(now, &tx);
        }
    }

    fn handle_client_events(
        &mut self,
        now: Instant,
        events: Vec<PppEvent>,
        out: &mut UmtsPollOutput,
    ) {
        for ev in events {
            match ev {
                PppEvent::Up { local, peer } => {
                    if self.dialer == DialerState::PppNegotiating {
                        self.dialer = DialerState::Connected;
                        self.dialer_deadline = None;
                        self.local_addr = Some(local);
                        self.peer_addr = Some(peer);
                        // Dialing already put the radio in DCH-bound state.
                        self.rrc.on_traffic(now, 0);
                        self.apply_rrc(now);
                        out.events.push(UmtsEvent::Connected { local, peer });
                    }
                }
                PppEvent::Down => {
                    if self.dialer == DialerState::Connected
                        || self.dialer == DialerState::Terminating
                    {
                        self.finish_teardown(now);
                        out.events.push(UmtsEvent::Disconnected);
                    }
                }
                PppEvent::AuthFailed => {
                    self.fail(now, DialError::AuthFailed, out);
                }
            }
        }
    }

    fn dialer_response(&mut self, now: Instant, line: &str, out: &mut UmtsPollOutput) {
        match self.dialer {
            DialerState::Probe => {
                if line == "OK" {
                    self.dialer = DialerState::CheckPin;
                    self.serial.host_write(now, b"AT+CPIN?\r");
                } else if line == "ERROR" {
                    self.fail(now, DialError::NoCarrier, out);
                }
            }
            DialerState::CheckPin if line.starts_with("+CPIN:") => {
                if line.contains("READY") {
                    self.dialer = DialerState::WaitRegistration;
                    self.reg_polls = 0;
                    self.dialer_deadline = Some(
                        now + REG_POLL_INTERVAL * u64::from(MAX_REG_POLLS) + Duration::from_secs(5),
                    );
                    self.serial.host_write(now, b"AT+CREG?\r");
                    self.reg_polls = 1;
                } else {
                    self.fail(now, DialError::SimLocked, out);
                }
            }
            DialerState::WaitRegistration => {
                if let Some(code) = line.strip_prefix("+CREG: 0,") {
                    match code.trim() {
                        "1" | "5" => {
                            self.dialer = DialerState::SetApn;
                            self.reg_poll_at = None;
                            let cmd = format!("AT+CGDCONT=1,\"IP\",\"{}\"\r", self.profile.apn);
                            self.serial.host_write(now, cmd.as_bytes());
                        }
                        "3" => self.fail(now, DialError::RegistrationDenied, out),
                        _ => {
                            self.reg_poll_at = Some(now + REG_POLL_INTERVAL);
                        }
                    }
                }
            }
            DialerState::SetApn => {
                if line == "OK" {
                    self.dialer = DialerState::Dial;
                    self.dialer_deadline = Some(now + Duration::from_secs(30));
                    self.serial.host_write(now, b"ATD*99***1#\r");
                } else if line == "ERROR" {
                    self.fail(now, DialError::NoCarrier, out);
                }
            }
            DialerState::Dial => {
                if line == "CONNECT" {
                    self.begin_ppp(now);
                } else if line == "NO CARRIER" || line == "BUSY" || line == "ERROR" {
                    self.fail(now, DialError::NoCarrier, out);
                }
            }
            _ => {}
        }
    }

    fn begin_ppp(&mut self, now: Instant) {
        self.dialer = DialerState::PppNegotiating;
        self.dialer_deadline = Some(now + PPP_TIMEOUT);

        let assigned = self.pool.allocate().expect("operator pool exhausted");
        let client_magic = (self.rng.next_u64() >> 32) as u32 | 1;
        let server_magic = (self.rng.next_u64() >> 32) as u32 | 2;
        let mut client = PppEndpoint::client(client_magic, self.credentials.clone(), true);
        // A one-shot injected PAP reject makes the GGSN demand credentials
        // nothing can satisfy for exactly this attempt.
        let (require_pap, expected_credentials) = if self.force_auth_reject {
            self.force_auth_reject = false;
            (true, Some(Credentials::new("!radius-fault!", "!radius-fault!")))
        } else {
            (self.profile.require_pap, self.profile.expected_credentials.clone())
        };
        let server = PppEndpoint::server(
            server_magic,
            PppServerConfig {
                own_addr: self.profile.ggsn_addr,
                assign_peer: assigned,
                dns: self.profile.dns,
                require_pap,
                expected_credentials,
            },
        );
        self.ppp_server = Some(server);
        // Dialing counts as radio activity: the RRC connection that carried
        // the call setup is live.
        self.rrc.on_traffic(now, 0);

        let r = client.start(now);
        self.route_client_bytes(now, r.tx);
        self.ppp_client = Some(client);
        if let Some(server) = self.ppp_server.as_mut() {
            let r = server.start(now);
            self.signaling.push_to_host(now, r.tx);
        }
    }

    fn fail(&mut self, now: Instant, error: DialError, out: &mut UmtsPollOutput) {
        self.finish_teardown(now);
        self.dialer = DialerState::Failed;
        out.events.push(UmtsEvent::Failed(error));
    }

    fn finish_teardown(&mut self, now: Instant) {
        if let Some(addr) = self.local_addr.take() {
            self.pool.release(addr);
        }
        self.peer_addr = None;
        if let Some(mut ppp) = self.ppp_client.take() {
            let _ = ppp.carrier_lost(now);
        }
        self.ppp_server = None;
        self.modem.drop_carrier(now);
        // pppd releases the tty on hangup: in-flight serial bytes (e.g. a
        // Terminate-Ack still crossing the line) must not reach the modem
        // as garbage AT input and desync the next dial.
        self.serial = SerialLine::new(460_800);
        self.modem_lines = LineAssembler::new();
        self.host_lines = LineAssembler::new();
        self.uplink.flush();
        self.downlink.flush();
        self.conntrack.clear();
        self.signaling.clear();
        self.pending.clear();
        self.dialer = DialerState::Idle;
        self.dialer_deadline = None;
        self.reg_poll_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::packet::{Mark, PacketId};
    use umtslab_net::wire::Endpoint;

    fn attachment() -> UmtsAttachment {
        UmtsAttachment::new(
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
            42,
            Instant::ZERO,
        )
    }

    /// Drives the attachment until `pred` or the horizon, collecting
    /// events and data.
    fn run_until(
        att: &mut UmtsAttachment,
        mut now: Instant,
        horizon: Instant,
        mut stop: impl FnMut(&UmtsAttachment, &[UmtsEvent]) -> bool,
    ) -> (Instant, Vec<UmtsEvent>, Vec<UmtsData>) {
        let mut events = Vec::new();
        let mut data = Vec::new();
        loop {
            let out = att.poll(now);
            events.extend(out.events);
            data.extend(out.data);
            if stop(att, &events) || now >= horizon {
                return (now, events, data);
            }
            match att.next_wakeup() {
                Some(t) if t > now => now = t.min(horizon),
                Some(_) => now += Duration::from_micros(100),
                None => return (now, events, data),
            }
        }
    }

    fn connect(att: &mut UmtsAttachment) -> Instant {
        att.start(Instant::ZERO);
        let (t, events, _) =
            run_until(att, Instant::ZERO, Instant::from_secs(60), |a, _| a.is_connected());
        assert!(att.is_connected(), "attachment failed to connect; events: {events:?}");
        t
    }

    fn data_pkt(att: &UmtsAttachment, id: u64, payload: usize) -> Packet {
        let mut p = Packet::udp(
            PacketId(id),
            Endpoint::new(att.local_addr().unwrap(), 9000),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 50), 9001),
            vec![0xAB; payload],
            Instant::ZERO,
        );
        p.mark = Mark(7);
        p
    }

    #[test]
    fn full_dialup_connects() {
        let mut att = attachment();
        let t = connect(&mut att);
        // Registration (~2.5 s) + dial (~3.2 s) + PPP over a ~90 ms
        // signaling path: the whole workflow lands in a plausible window.
        assert!(t >= Instant::from_secs(5), "connected suspiciously fast: {t}");
        assert!(t <= Instant::from_secs(20), "connection took too long: {t}");
        let local = att.local_addr().unwrap();
        assert!(att.profile().pool.contains(local));
        assert_eq!(att.peer_addr(), Some(att.profile().ggsn_addr));
    }

    #[test]
    fn uplink_packet_reaches_internet_side() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let pkt = data_pkt(&att, 1, 100);
        assert_eq!(att.send_uplink(t0, pkt), UplinkOutcome::Queued);
        let (_, _, data) = run_until(&mut att, t0, t0 + Duration::from_secs(10), |_, _| false);
        let to_internet: Vec<_> =
            data.iter().filter(|d| matches!(d, UmtsData::ToInternet(_))).collect();
        assert_eq!(to_internet.len(), 1);
        if let UmtsData::ToInternet(p) = to_internet[0] {
            assert_eq!(p.id, PacketId(1));
            assert_eq!(p.mark, Mark(7), "mark survives the PPP data path");
            assert_eq!(p.payload, vec![0xAB; 100]);
        }
    }

    #[test]
    fn downlink_reply_reaches_host_but_unsolicited_is_blocked() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let local = att.local_addr().unwrap();
        let remote = Endpoint::new(Ipv4Address::new(192, 0, 2, 50), 9001);

        // Unsolicited inbound (the paper's ssh case): blocked.
        let unsolicited = Packet::udp(PacketId(5), remote, Endpoint::new(local, 22), vec![1], t0);
        assert_eq!(att.deliver_downlink(t0, unsolicited), DownlinkOutcome::BlockedByFirewall);

        // Send outbound first, let it traverse the radio, then reply.
        let pkt = data_pkt(&att, 1, 50);
        att.send_uplink(t0, pkt);
        let (t1, _, _) = run_until(&mut att, t0, t0 + Duration::from_secs(5), |a, _| {
            a.uplink_stats().served > 0
        });
        let reply = Packet::udp(PacketId(6), remote, Endpoint::new(local, 9000), vec![2], t1);
        assert_eq!(
            att.deliver_downlink(t1 + Duration::from_secs(1), reply),
            DownlinkOutcome::Queued
        );
        let (_, _, data) = run_until(
            &mut att,
            t1 + Duration::from_secs(1),
            t1 + Duration::from_secs(8),
            |_, _| false,
        );
        assert!(data.iter().any(|d| matches!(d, UmtsData::ToHost(p) if p.id == PacketId(6))));
    }

    #[test]
    fn send_before_connect_is_rejected() {
        let mut att = attachment();
        let p = Packet::udp(
            PacketId(0),
            Endpoint::new(Ipv4Address::new(10, 64, 128, 2), 9000),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 50), 9001),
            vec![],
            Instant::ZERO,
        );
        assert_eq!(att.send_uplink(Instant::ZERO, p), UplinkOutcome::NotConnected);
    }

    #[test]
    fn stop_disconnects_and_releases_address() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let addr = att.local_addr().unwrap();
        att.stop(t0);
        let (_, events, _) = run_until(&mut att, t0, t0 + Duration::from_secs(30), |a, _| {
            !a.is_connected() && a.local_addr().is_none()
        });
        assert!(events.contains(&UmtsEvent::Disconnected), "events: {events:?}");
        assert_eq!(att.local_addr(), None);
        // Reconnecting reuses the released address.
        att.start(Instant::from_secs(60));
        let (_, _, _) =
            run_until(&mut att, Instant::from_secs(60), Instant::from_secs(120), |a, _| {
                a.is_connected()
            });
        assert_eq!(att.local_addr(), Some(addr));
    }

    #[test]
    fn wrong_credentials_fail_auth_on_microcell() {
        let mut att = UmtsAttachment::new(
            OperatorProfile::private_microcell(),
            DeviceProfile::option_globetrotter(),
            Some(Credentials::new("wrong", "wrong")),
            42,
            Instant::ZERO,
        );
        att.start(Instant::ZERO);
        let (_, events, _) =
            run_until(&mut att, Instant::ZERO, Instant::from_secs(60), |_, evs| {
                evs.iter().any(|e| matches!(e, UmtsEvent::Failed(_)))
            });
        assert!(events.contains(&UmtsEvent::Failed(DialError::AuthFailed)), "events: {events:?}");
        assert!(!att.is_connected());
    }

    #[test]
    fn microcell_allows_unsolicited_inbound() {
        let mut att = UmtsAttachment::new(
            OperatorProfile::private_microcell(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("onelab", "onelab")),
            42,
            Instant::ZERO,
        );
        att.start(Instant::ZERO);
        let (t, _, _) =
            run_until(&mut att, Instant::ZERO, Instant::from_secs(60), |a, _| a.is_connected());
        assert!(att.is_connected());
        let local = att.local_addr().unwrap();
        let unsolicited = Packet::udp(
            PacketId(9),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 50), 2222),
            Endpoint::new(local, 22),
            vec![1],
            t,
        );
        assert_eq!(att.deliver_downlink(t, unsolicited), DownlinkOutcome::Queued);
    }

    #[test]
    fn saturating_uplink_overflows_buffer() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let mut overflowed = 0;
        // Offer far more than the bearer buffer can hold at once.
        for i in 0..400 {
            let p = data_pkt(&att, i, 1000);
            if att.send_uplink(t0, p) == UplinkOutcome::DroppedOverflow {
                overflowed += 1;
            }
        }
        assert!(overflowed > 0, "deep but finite buffer must eventually drop");
        assert!(att.uplink_backlog() <= att.profile().uplink.queue_bytes);
    }

    #[test]
    fn registration_denied_fails_cleanly() {
        let mut profile = OperatorProfile::commercial_italy();
        let mut att = UmtsAttachment::new(
            profile.clone(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
            42,
            Instant::ZERO,
        );
        // Rebuild with a denying modem signal: craft via a custom modem is
        // not exposed, so emulate a hostile network by zeroing the
        // registration path: use a profile whose APN the dialer sets but
        // whose network denies registration.
        profile.name = "denied".into();
        let mut signal = profile.network_signal();
        signal.registration_denied = true;
        att.modem = Modem::power_on(DeviceProfile::huawei_e620(), signal, Instant::ZERO);
        att.start(Instant::ZERO);
        let (_, events, _) =
            run_until(&mut att, Instant::ZERO, Instant::from_secs(40), |_, evs| {
                evs.iter().any(|e| matches!(e, UmtsEvent::Failed(_)))
            });
        assert!(
            events.contains(&UmtsEvent::Failed(DialError::RegistrationDenied)),
            "events: {events:?}"
        );
        // A later start() can retry from Failed.
        att.start(Instant::from_secs(50));
        assert_ne!(att.dialer, DialerState::Idle);
    }

    #[test]
    fn stop_mid_dial_aborts_cleanly() {
        let mut att = attachment();
        att.start(Instant::ZERO);
        // Let it get into the registration wait, then abort.
        let (t, _, _) = run_until(&mut att, Instant::ZERO, Instant::from_secs(2), |_, _| false);
        att.stop(t);
        assert!(!att.is_connected());
        assert_eq!(att.local_addr(), None);
        // And it can start again afterwards.
        att.start(t + Duration::from_secs(1));
        let (_, _, _) =
            run_until(&mut att, t + Duration::from_secs(1), t + Duration::from_secs(60), |a, _| {
                a.is_connected()
            });
        assert!(att.is_connected());
    }

    #[test]
    fn rrc_demotes_on_idle_session_and_recovers() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        // Drive a packet so the RRC is in DCH.
        let p = data_pkt(&att, 1, 100);
        att.send_uplink(t0, p);
        let (t1, _, _) = run_until(&mut att, t0, t0 + Duration::from_secs(2), |a, _| {
            a.uplink_stats().served > 0
        });
        assert!(matches!(att.rrc_state(), RrcState::CellDch { .. }));
        // 40+ seconds of silence demote to FACH and then Idle.
        let (_, _, _) = run_until(&mut att, t1, t1 + Duration::from_secs(45), |_, _| false);
        assert_eq!(att.rrc_state(), RrcState::Idle);
        // New traffic brings the channel back (promotion delay applies).
        let t2 = t1 + Duration::from_secs(45);
        let p = data_pkt(&att, 2, 100);
        assert_eq!(att.send_uplink(t2, p), UplinkOutcome::Queued);
        let (_, _, data) = run_until(&mut att, t2, t2 + Duration::from_secs(10), |_, _| false);
        assert!(
            data.iter().any(|d| matches!(d, UmtsData::ToInternet(_))),
            "packet must eventually be served after re-promotion"
        );
        // By the end of the window the channel has been re-promoted and —
        // after a few more seconds of silence — possibly demoted back to
        // FACH, but never all the way to Idle yet.
        assert_ne!(att.rrc_state(), RrcState::Idle);
    }

    #[test]
    fn downlink_overflow_is_reported() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let local = att.local_addr().unwrap();
        let remote = Endpoint::new(Ipv4Address::new(192, 0, 2, 50), 9001);
        // Open the conntrack pinhole.
        let p = data_pkt(&att, 1, 50);
        att.send_uplink(t0, p);
        let (t1, _, _) = run_until(&mut att, t0, t0 + Duration::from_secs(5), |a, _| {
            a.uplink_stats().served > 0
        });
        // Flood the downlink far beyond its buffer.
        let mut overflowed = false;
        for i in 0..600 {
            let reply = Packet::udp(
                PacketId(100 + i),
                remote,
                Endpoint::new(local, 9000),
                vec![0; 1000],
                t1,
            );
            if att.deliver_downlink(t1, reply) == DownlinkOutcome::DroppedOverflow {
                overflowed = true;
                break;
            }
        }
        assert!(overflowed, "downlink buffer must be finite");
    }

    #[test]
    fn sustained_saturation_upgrades_uplink_rate() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let mut now = t0;
        let mut served_before_knee = 0u64;
        let mut id = 0u64;
        let knee = t0 + Duration::from_secs(55);
        let end = t0 + Duration::from_secs(70);
        let mut served_after_knee = 0u64;
        // Offer 1 Mbps (125 kB/s) continuously.
        while now < end {
            for _ in 0..2 {
                let p = data_pkt(&att, id, 996);
                id += 1;
                let _ = att.send_uplink(now, p);
            }
            let out = att.poll(now);
            for d in out.data {
                if matches!(d, UmtsData::ToInternet(_)) {
                    if now < knee {
                        served_before_knee += 1;
                    } else {
                        served_after_knee += 1;
                    }
                }
            }
            now += Duration::from_millis(16); // ~2 pkts / 16 ms ≈ 1 Mbps
        }
        // Before the knee: initial DCH ≈ 160 kbps ≈ 19.5 pkt/s of 1024 B.
        let before_rate = served_before_knee as f64 / 55.0;
        let after_rate = served_after_knee as f64 / 15.0;
        assert!(
            after_rate > before_rate * 1.8,
            "post-upgrade rate {after_rate:.1} pkt/s should be ~2.6x the pre-upgrade {before_rate:.1} pkt/s"
        );
        assert_eq!(att.rrc_state(), RrcState::CellDch { upgraded: true });
    }

    #[test]
    fn ppp_terminate_fault_drops_the_session() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        att.inject_fault(t0, SessionFault::PppTerminate);
        let (t1, events, _) = run_until(&mut att, t0, t0 + Duration::from_secs(30), |a, _| {
            !a.is_connected() && a.local_addr().is_none()
        });
        assert!(events.contains(&UmtsEvent::Disconnected), "events: {events:?}");
        // The LCP exchange is fast: well under the keepalive horizon.
        assert!(t1 < t0 + Duration::from_secs(5), "terminate took too long: {t1}");
        // A redial succeeds.
        att.start(t1 + Duration::from_secs(1));
        let (_, _, _) =
            run_until(&mut att, t1, t1 + Duration::from_secs(60), |a, _| a.is_connected());
        assert!(att.is_connected());
    }

    #[test]
    fn modem_hang_starves_keepalives_until_reset() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        att.inject_fault(t0, SessionFault::ModemHang);
        assert!(att.modem_is_hung());
        // The PPP keepalive (10 s interval, 3 misses) detects the dead
        // line within ~40 s.
        let (t1, events, _) =
            run_until(&mut att, t0, t0 + Duration::from_secs(60), |a, _| !a.is_connected());
        assert!(events.contains(&UmtsEvent::Disconnected), "events: {events:?}");
        // Without a reset, redialing fails: the hung modem eats "AT".
        att.start(t1 + Duration::from_secs(1));
        let (t2, events, _) = run_until(
            &mut att,
            t1 + Duration::from_secs(1),
            t1 + Duration::from_secs(60),
            |_, evs| evs.iter().any(|e| matches!(e, UmtsEvent::Failed(_))),
        );
        assert!(events.contains(&UmtsEvent::Failed(DialError::NoCarrier)), "events: {events:?}");
        // After a power cycle the same attachment reconnects.
        att.reset_modem(t2 + Duration::from_secs(1));
        assert!(!att.modem_is_hung());
        att.start(t2 + Duration::from_secs(1));
        let (_, _, _) = run_until(
            &mut att,
            t2 + Duration::from_secs(1),
            t2 + Duration::from_secs(60),
            |a, _| a.is_connected(),
        );
        assert!(att.is_connected());
    }

    #[test]
    fn pap_reject_fault_fails_exactly_one_attempt() {
        let mut att = attachment();
        att.inject_fault(Instant::ZERO, SessionFault::PapReject);
        att.start(Instant::ZERO);
        let (t1, events, _) =
            run_until(&mut att, Instant::ZERO, Instant::from_secs(60), |_, evs| {
                evs.iter().any(|e| matches!(e, UmtsEvent::Failed(_)))
            });
        assert!(events.contains(&UmtsEvent::Failed(DialError::AuthFailed)), "events: {events:?}");
        // The reject was one-shot: the next attempt authenticates fine.
        att.start(t1 + Duration::from_secs(1));
        let (_, _, _) =
            run_until(&mut att, t1, t1 + Duration::from_secs(60), |a, _| a.is_connected());
        assert!(att.is_connected());
    }

    #[test]
    fn at_timeout_fault_stalls_one_dial_stage() {
        let mut att = attachment();
        att.inject_fault(Instant::ZERO, SessionFault::AtTimeout);
        att.start(Instant::ZERO); // the probe "AT" is swallowed
        let (_, events, _) =
            run_until(&mut att, Instant::ZERO, Instant::from_secs(30), |_, evs| {
                evs.iter().any(|e| matches!(e, UmtsEvent::Failed(_)))
            });
        // The probe stage deadline (10 s) is the only recourse.
        assert!(events.contains(&UmtsEvent::Failed(DialError::NoCarrier)), "events: {events:?}");
    }

    #[test]
    fn operator_detach_drops_session_and_reregisters() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        att.inject_fault(t0, SessionFault::OperatorDetach);
        let out = att.poll(t0);
        assert!(out.events.contains(&UmtsEvent::Disconnected), "events: {:?}", out.events);
        assert!(!att.is_connected());
        // After re-registration a redial succeeds.
        att.start(t0 + Duration::from_secs(1));
        let (_, _, _) =
            run_until(&mut att, t0, t0 + Duration::from_secs(60), |a, _| a.is_connected());
        assert!(att.is_connected());
    }

    #[test]
    fn rrc_release_fault_forces_repromotion() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        let p = data_pkt(&att, 1, 100);
        att.send_uplink(t0, p);
        let (t1, _, _) = run_until(&mut att, t0, t0 + Duration::from_secs(2), |a, _| {
            a.uplink_stats().served > 0
        });
        assert!(matches!(att.rrc_state(), RrcState::CellDch { .. }));
        att.inject_fault(t1, SessionFault::RrcRelease);
        assert_eq!(att.rrc_state(), RrcState::Idle);
        assert!(att.is_connected(), "RRC release does not kill the PPP session");
        // New traffic re-promotes and is eventually served.
        let p = data_pkt(&att, 2, 100);
        assert_eq!(att.send_uplink(t1, p), UplinkOutcome::Queued);
        let (_, _, data) = run_until(&mut att, t1, t1 + Duration::from_secs(10), |_, _| false);
        assert!(data.iter().any(|d| matches!(d, UmtsData::ToInternet(_))));
    }

    #[test]
    fn bearer_preemption_drops_backlog_and_grant() {
        let mut att = attachment();
        let t0 = connect(&mut att);
        for i in 0..20 {
            let p = data_pkt(&att, i, 500);
            let _ = att.send_uplink(t0, p);
        }
        assert!(att.uplink_backlog() > 0);
        att.inject_fault(t0, SessionFault::BearerPreemption);
        assert_eq!(att.uplink_backlog(), 0, "preemption flushes the bearer queue");
        assert!(att.is_connected());
    }
}
