//! # umtslab-umts — the simulated UMTS (3G) access network
//!
//! Everything between a node's serial port and the operator's internet
//! edge:
//!
//! * [`serial`] — the baud-paced serial line to the 3G card;
//! * [`at`] — the modem's AT-command interpreter with two device profiles
//!   (Option Globetrotter GT+ 3G and Huawei E620, the cards the paper
//!   supports);
//! * [`ppp`] — a complete PPP implementation: HDLC framing with FCS-16,
//!   the RFC 1661 negotiation automaton, LCP, PAP and IPCP, and the
//!   phase-composed session endpoint;
//! * [`rrc`] — the radio resource controller with on-demand grant
//!   upgrades (the mechanism behind the paper's Figure 4 knee);
//! * [`bearer`] — TTI-paced radio bearers with deep buffers, jitter and
//!   RLC retransmissions;
//! * [`operator`] — operator profiles (commercial vs. private micro-cell),
//!   address pools and the GGSN conntrack firewall;
//! * [`attachment`] — the integrated dial-up workflow and data path.
//!
//! ## Example
//!
//! ```
//! use umtslab_umts::ppp::frame::{encode_frame, protocol, Deframer};
//!
//! // HDLC-frame an IPv4 payload and recover it byte-for-byte.
//! let payload = vec![0x45, 0x00, 0x7e, 0x7d, 0xff];
//! let wire = encode_frame(protocol::IPV4, &payload);
//! let mut deframer = Deframer::new();
//! let frames = deframer.feed(&wire);
//! assert_eq!(frames.len(), 1);
//! assert_eq!(frames[0].protocol, protocol::IPV4);
//! assert_eq!(frames[0].payload, payload);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod at;
pub mod attachment;
pub mod bearer;
pub mod operator;
pub mod ppp;
pub mod rrc;
pub mod serial;

pub use at::{DeviceModel, DeviceProfile, Modem, ModemMode, ModemOutput, NetworkSignal, RegStatus};
pub use attachment::{
    DialError, DownlinkOutcome, SessionFault, UmtsAttachment, UmtsData, UmtsEvent, UmtsPollOutput,
    UplinkOutcome,
};
pub use bearer::{BearerConfig, BearerStats, UmtsBearer};
pub use operator::{AddressPool, Conntrack, OperatorProfile};
pub use ppp::{Credentials, PppEndpoint, PppEvent, PppPhase, PppServerConfig};
pub use rrc::{BearerGrant, RrcConfig, RrcController, RrcDwell, RrcEvent, RrcState};
pub use serial::{LineAssembler, SerialLine};
