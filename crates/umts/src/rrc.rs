//! The RRC (Radio Resource Control) state machine.
//!
//! UMTS allocates radio resources on demand: an idle terminal holds no
//! dedicated channel; traffic triggers promotion to CELL_FACH (a slow
//! shared channel) and then CELL_DCH (a dedicated channel with a granted
//! rate); inactivity demotes back down. On top of that, the network
//! re-evaluates the grant of a busy DCH and can *upgrade* it — the
//! "adaptation algorithm … which allocates the network resources to the
//! users in an on-demand fashion" that the paper observes in Figure 4,
//! where the saturated uplink runs at ≈150 kbps for the first ~50 s and
//! then more than doubles.
//!
//! The controller is a passive state machine: feed it traffic observations
//! with [`RrcController::on_traffic`], drive timers with
//! [`RrcController::poll`], and read the effective grant with
//! [`RrcController::grant`].

use umtslab_sim::time::{Duration, Instant};

/// The rate pair granted by the network in a given state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BearerGrant {
    /// Uplink rate in bits per second.
    pub uplink_bps: u64,
    /// Downlink rate in bits per second.
    pub downlink_bps: u64,
}

/// RRC connection states (simplified to the three the data path sees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcState {
    /// No radio connection; no data can flow until promotion completes.
    Idle,
    /// Shared channel: low rate, low setup cost.
    CellFach,
    /// Dedicated channel with a granted rate. `upgraded` marks the
    /// higher-rate grant assigned after sustained load.
    CellDch {
        /// Whether the on-demand upgrade has been applied.
        upgraded: bool,
    },
}

/// Timing and threshold parameters of the controller.
#[derive(Debug, Clone)]
pub struct RrcConfig {
    /// Grant while on CELL_FACH.
    pub fach_grant: BearerGrant,
    /// Initial CELL_DCH grant.
    pub initial_dch: BearerGrant,
    /// Upgraded CELL_DCH grant.
    pub upgraded_dch: BearerGrant,
    /// Radio-connection setup time (Idle → CELL_DCH promotion).
    pub promotion_delay: Duration,
    /// Reconfiguration time for the in-DCH grant upgrade.
    pub upgrade_delay: Duration,
    /// Uplink backlog (bytes) that counts as "saturated" for upgrade
    /// purposes.
    pub upgrade_backlog_threshold: usize,
    /// How long saturation must persist before the network upgrades the
    /// grant. This constant positions the knee of the paper's Figure 4.
    pub upgrade_sustain: Duration,
    /// Inactivity before CELL_DCH demotes to CELL_FACH.
    pub dch_inactivity: Duration,
    /// Inactivity before CELL_FACH demotes to Idle.
    pub fach_inactivity: Duration,
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig {
            fach_grant: BearerGrant { uplink_bps: 32_000, downlink_bps: 32_000 },
            initial_dch: BearerGrant { uplink_bps: 160_000, downlink_bps: 384_000 },
            upgraded_dch: BearerGrant { uplink_bps: 416_000, downlink_bps: 1_800_000 },
            promotion_delay: Duration::from_millis(1_800),
            upgrade_delay: Duration::from_millis(2_500),
            upgrade_backlog_threshold: 12_000,
            upgrade_sustain: Duration::from_secs(45),
            dch_inactivity: Duration::from_secs(5),
            fach_inactivity: Duration::from_secs(30),
        }
    }
}

/// Transitions reported by [`RrcController::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RrcEvent {
    /// Entered CELL_DCH (initial grant active).
    PromotedToDch,
    /// The in-DCH grant was upgraded.
    GrantUpgraded,
    /// Demoted to CELL_FACH.
    DemotedToFach,
    /// Demoted to Idle.
    DemotedToIdle,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Promote,
    Upgrade,
}

/// Cumulative per-state residence times and promotion-latency totals.
///
/// Dwell is accounted at the *logical* transition instants — a pending
/// promotion completes at its scheduled instant and an inactivity
/// demotion at `last_activity + inactivity` — so the numbers do not
/// depend on how often [`RrcController::poll`] happens to be called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RrcDwell {
    /// Time spent in Idle.
    pub idle: Duration,
    /// Time spent in CELL_FACH.
    pub fach: Duration,
    /// Time spent in CELL_DCH on the initial grant.
    pub dch: Duration,
    /// Time spent in CELL_DCH on the upgraded grant.
    pub dch_upgraded: Duration,
    /// Completed Idle → CELL_DCH promotions.
    pub idle_promotions: u64,
    /// Summed latency of those promotions (first packet in Idle to the
    /// dedicated channel coming up); divide by `idle_promotions` for the
    /// mean connection-setup time the paper measures.
    pub idle_promotion_latency: Duration,
}

/// The per-terminal RRC controller.
#[derive(Debug)]
pub struct RrcController {
    config: RrcConfig,
    state: RrcState,
    last_activity: Instant,
    /// Since when the uplink backlog has continuously exceeded the
    /// upgrade threshold.
    saturated_since: Option<Instant>,
    /// An in-flight promotion/upgrade completing at the instant.
    pending: Option<(Instant, Pending)>,
    /// Lifetime count of state transitions (promotions, upgrades,
    /// demotions) — one per [`RrcEvent`] ever returned by `poll`.
    transitions: u64,
    /// Closed dwell buckets (everything before `state_since`).
    dwell: RrcDwell,
    /// When the current state was entered (logical instant).
    state_since: Instant,
    /// The instant the pending promotion was requested, and whether the
    /// request was made from Idle (only those count toward the paper's
    /// connection-setup latency).
    promotion_requested: Option<(Instant, bool)>,
}

impl RrcController {
    /// Creates a controller in Idle.
    pub fn new(config: RrcConfig, now: Instant) -> RrcController {
        RrcController {
            config,
            state: RrcState::Idle,
            last_activity: now,
            saturated_since: None,
            pending: None,
            transitions: 0,
            dwell: RrcDwell::default(),
            state_since: now,
            promotion_requested: None,
        }
    }

    /// Closes the current state's dwell bucket up to `at` and enters
    /// `next`. `at` earlier than the state entry is clamped to zero.
    fn switch_state(&mut self, at: Instant, next: RrcState) {
        let spent = at.saturating_duration_since(self.state_since);
        match self.state {
            RrcState::Idle => self.dwell.idle += spent,
            RrcState::CellFach => self.dwell.fach += spent,
            RrcState::CellDch { upgraded: false } => self.dwell.dch += spent,
            RrcState::CellDch { upgraded: true } => self.dwell.dch_upgraded += spent,
        }
        self.state_since = self.state_since.max(at);
        self.state = next;
    }

    /// Per-state residence times with the still-open current state
    /// counted up to `now`.
    pub fn dwell(&self, now: Instant) -> RrcDwell {
        let mut d = self.dwell;
        let open = now.saturating_duration_since(self.state_since);
        match self.state {
            RrcState::Idle => d.idle += open,
            RrcState::CellFach => d.fach += open,
            RrcState::CellDch { upgraded: false } => d.dch += open,
            RrcState::CellDch { upgraded: true } => d.dch_upgraded += open,
        }
        d
    }

    /// The current state.
    pub fn state(&self) -> RrcState {
        self.state
    }

    /// Lifetime count of state transitions reported by
    /// [`RrcController::poll`]. A steady flow settles into CELL_DCH after
    /// two or three; bursty traffic oscillating across the inactivity
    /// timers keeps incrementing it.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The configuration.
    pub fn config(&self) -> &RrcConfig {
        &self.config
    }

    /// The effective grant right now. `None` while Idle or while the
    /// initial promotion is still in progress — packets arriving then must
    /// wait in the bearer queue, which is what produces the multi-second
    /// first-packet latency of a cold 3G link.
    pub fn grant(&self) -> Option<BearerGrant> {
        match self.state {
            RrcState::Idle => None,
            RrcState::CellFach => Some(self.config.fach_grant),
            RrcState::CellDch { upgraded } => {
                Some(if upgraded { self.config.upgraded_dch } else { self.config.initial_dch })
            }
        }
    }

    /// Reports traffic activity and the current uplink backlog. Call on
    /// every enqueue (and periodically while draining a backlog).
    pub fn on_traffic(&mut self, now: Instant, uplink_backlog_bytes: usize) {
        self.last_activity = now;
        match self.state {
            RrcState::Idle => {
                if self.pending.is_none() {
                    self.pending = Some((now + self.config.promotion_delay, Pending::Promote));
                    self.promotion_requested = Some((now, true));
                }
            }
            RrcState::CellFach => {
                // FACH with real traffic promotes to DCH quickly.
                if self.pending.is_none() {
                    self.pending = Some((now + self.config.promotion_delay / 4, Pending::Promote));
                    self.promotion_requested = Some((now, false));
                }
            }
            RrcState::CellDch { upgraded: false } => {
                if uplink_backlog_bytes >= self.config.upgrade_backlog_threshold {
                    let since = *self.saturated_since.get_or_insert(now);
                    if self.pending.is_none()
                        && now.saturating_duration_since(since) >= self.config.upgrade_sustain
                    {
                        self.pending = Some((now + self.config.upgrade_delay, Pending::Upgrade));
                    }
                } else {
                    self.saturated_since = None;
                }
            }
            RrcState::CellDch { upgraded: true } => {}
        }
    }

    /// Network-initiated RRC connection release: the RNC tears the radio
    /// connection down to Idle regardless of activity. Traffic must go
    /// through a full promotion again before anything flows.
    pub fn release(&mut self, now: Instant) {
        if self.state != RrcState::Idle {
            self.transitions += 1;
        }
        self.switch_state(now, RrcState::Idle);
        self.pending = None;
        self.saturated_since = None;
        self.promotion_requested = None;
    }

    /// Network-initiated bearer preemption: a higher-priority user takes
    /// the dedicated resources, so the grant steps down one level
    /// (upgraded DCH → initial DCH → CELL_FACH) without disconnecting.
    pub fn preempt(&mut self, now: Instant) {
        match self.state {
            RrcState::CellDch { upgraded: true } => {
                self.switch_state(now, RrcState::CellDch { upgraded: false });
                self.transitions += 1;
            }
            RrcState::CellDch { upgraded: false } => {
                self.switch_state(now, RrcState::CellFach);
                self.transitions += 1;
                self.last_activity = now;
            }
            RrcState::CellFach | RrcState::Idle => {}
        }
        self.saturated_since = None;
    }

    /// The next instant the controller needs to be polled.
    pub fn next_wakeup(&self) -> Option<Instant> {
        let pending = self.pending.map(|(at, _)| at);
        let demotion = match self.state {
            RrcState::CellDch { .. } => Some(self.last_activity + self.config.dch_inactivity),
            RrcState::CellFach => Some(self.last_activity + self.config.fach_inactivity),
            RrcState::Idle => None,
        };
        match (pending, demotion) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Fires due timers, returning the transitions that happened.
    pub fn poll(&mut self, now: Instant) -> Vec<RrcEvent> {
        let mut events = Vec::new();
        if let Some((at, what)) = self.pending {
            if now >= at {
                self.pending = None;
                match what {
                    Pending::Promote => {
                        self.switch_state(at, RrcState::CellDch { upgraded: false });
                        self.saturated_since = None;
                        if let Some((requested, from_idle)) = self.promotion_requested.take() {
                            if from_idle {
                                self.dwell.idle_promotions += 1;
                                self.dwell.idle_promotion_latency +=
                                    at.saturating_duration_since(requested);
                            }
                        }
                        events.push(RrcEvent::PromotedToDch);
                    }
                    Pending::Upgrade => {
                        if matches!(self.state, RrcState::CellDch { upgraded: false }) {
                            self.switch_state(at, RrcState::CellDch { upgraded: true });
                            events.push(RrcEvent::GrantUpgraded);
                        }
                    }
                }
            }
        }
        // Inactivity demotions (never while a promotion is pending).
        if self.pending.is_none() {
            match self.state {
                RrcState::CellDch { .. }
                    if now.saturating_duration_since(self.last_activity)
                        >= self.config.dch_inactivity =>
                {
                    let boundary = self.last_activity + self.config.dch_inactivity;
                    self.switch_state(boundary, RrcState::CellFach);
                    self.saturated_since = None;
                    events.push(RrcEvent::DemotedToFach);
                }
                RrcState::CellFach
                    if now.saturating_duration_since(self.last_activity)
                        >= self.config.fach_inactivity =>
                {
                    let boundary = self.last_activity + self.config.fach_inactivity;
                    self.switch_state(boundary, RrcState::Idle);
                    events.push(RrcEvent::DemotedToIdle);
                }
                _ => {}
            }
        }
        self.transitions += events.len() as u64;
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RrcConfig {
        RrcConfig::default()
    }

    #[test]
    fn starts_idle_with_no_grant() {
        let r = RrcController::new(cfg(), Instant::ZERO);
        assert_eq!(r.state(), RrcState::Idle);
        assert_eq!(r.grant(), None);
        assert_eq!(r.next_wakeup(), None);
    }

    #[test]
    fn traffic_promotes_after_setup_delay() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        // Still idle during setup.
        assert!(r.poll(Instant::from_millis(1_000)).is_empty());
        assert_eq!(r.grant(), None);
        let ev = r.poll(Instant::from_millis(1_800));
        assert_eq!(ev, vec![RrcEvent::PromotedToDch]);
        assert_eq!(r.state(), RrcState::CellDch { upgraded: false });
        assert_eq!(r.grant().unwrap().uplink_bps, 160_000);
    }

    #[test]
    fn repeated_traffic_does_not_restart_promotion() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.on_traffic(Instant::from_millis(500), 100);
        r.on_traffic(Instant::from_millis(1_000), 100);
        let ev = r.poll(Instant::from_millis(1_800));
        assert_eq!(ev, vec![RrcEvent::PromotedToDch]);
    }

    #[test]
    fn sustained_saturation_upgrades_grant() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 50_000);
        r.poll(Instant::from_millis(1_800));
        assert_eq!(r.state(), RrcState::CellDch { upgraded: false });

        // Keep the backlog above threshold every second.
        let mut upgraded_at = None;
        for s in 2..70u64 {
            let t = Instant::from_secs(s);
            r.on_traffic(t, 50_000);
            for e in r.poll(t) {
                if e == RrcEvent::GrantUpgraded {
                    upgraded_at = Some(t);
                }
            }
        }
        let t = upgraded_at.expect("grant must upgrade under sustained load");
        // Sustain (45 s, measured from first saturation at ~1.8 s) plus
        // the reconfiguration delay: knee in the 46–52 s range.
        assert!(t >= Instant::from_secs(46) && t <= Instant::from_secs(52), "knee at {t}");
        assert_eq!(r.grant().unwrap().uplink_bps, 416_000);
    }

    #[test]
    fn saturation_gap_resets_the_sustain_clock() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 50_000);
        r.poll(Instant::from_secs(2));
        // 30 s saturated...
        for s in 2..32u64 {
            r.on_traffic(Instant::from_secs(s), 50_000);
            r.poll(Instant::from_secs(s));
        }
        // ...then a dip below threshold...
        r.on_traffic(Instant::from_secs(32), 10);
        // ...then saturated again for 40 s: not enough cumulative.
        for s in 33..73u64 {
            r.on_traffic(Instant::from_secs(s), 50_000);
            for e in r.poll(Instant::from_secs(s)) {
                assert_ne!(e, RrcEvent::GrantUpgraded, "upgrade fired too early at {s}s");
            }
        }
        // But five more seconds completes the new 45 s sustain.
        let mut upgraded = false;
        for s in 73..82u64 {
            r.on_traffic(Instant::from_secs(s), 50_000);
            if r.poll(Instant::from_secs(s)).contains(&RrcEvent::GrantUpgraded) {
                upgraded = true;
            }
        }
        assert!(upgraded);
    }

    #[test]
    fn light_traffic_never_upgrades() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_secs(2));
        for s in 2..200u64 {
            r.on_traffic(Instant::from_secs(s), 500); // tiny backlog
            for e in r.poll(Instant::from_secs(s)) {
                assert_ne!(e, RrcEvent::GrantUpgraded);
            }
        }
        assert_eq!(r.state(), RrcState::CellDch { upgraded: false });
    }

    #[test]
    fn inactivity_demotes_dch_fach_idle() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_secs(2));
        assert!(matches!(r.state(), RrcState::CellDch { .. }));
        // 5 s of silence → FACH.
        let ev = r.poll(Instant::from_secs(7).max(r.next_wakeup().unwrap()));
        assert_eq!(ev, vec![RrcEvent::DemotedToFach]);
        assert_eq!(r.grant().unwrap().uplink_bps, 32_000);
        // 30 more seconds of silence → Idle.
        let ev = r.poll(r.next_wakeup().unwrap());
        assert_eq!(ev, vec![RrcEvent::DemotedToIdle]);
        assert_eq!(r.grant(), None);
    }

    #[test]
    fn fach_promotes_quickly_on_new_traffic() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_secs(2));
        let _ = r.poll(Instant::from_secs(10)); // demoted to FACH
        assert_eq!(r.state(), RrcState::CellFach);
        r.on_traffic(Instant::from_secs(11), 100);
        // FACH→DCH takes a quarter of the full setup.
        let ev = r.poll(Instant::from_secs(11) + cfg().promotion_delay / 4);
        assert_eq!(ev, vec![RrcEvent::PromotedToDch]);
    }

    #[test]
    fn activity_holds_off_demotion() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_secs(2));
        for s in 2..30u64 {
            r.on_traffic(Instant::from_secs(s), 100);
            assert!(r.poll(Instant::from_secs(s)).is_empty(), "no demotion at {s}s");
        }
        assert!(matches!(r.state(), RrcState::CellDch { .. }));
    }

    #[test]
    fn upgraded_grant_survives_until_demotion() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 50_000);
        r.poll(Instant::from_secs(2));
        for s in 2..60u64 {
            r.on_traffic(Instant::from_secs(s), 50_000);
            r.poll(Instant::from_secs(s));
        }
        assert_eq!(r.state(), RrcState::CellDch { upgraded: true });
        // Light traffic keeps the upgraded grant.
        for s in 60..70u64 {
            r.on_traffic(Instant::from_secs(s), 10);
            r.poll(Instant::from_secs(s));
        }
        assert_eq!(r.state(), RrcState::CellDch { upgraded: true });
        // Silence demotes to FACH; the upgrade is lost.
        let _ = r.poll(Instant::from_secs(80));
        assert_eq!(r.state(), RrcState::CellFach);
        r.on_traffic(Instant::from_secs(81), 100);
        let _ = r.poll(Instant::from_secs(83));
        assert_eq!(r.state(), RrcState::CellDch { upgraded: false });
    }

    #[test]
    fn release_forces_idle_and_counts_a_transition() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_secs(2));
        assert!(matches!(r.state(), RrcState::CellDch { .. }));
        let before = r.transitions();
        r.release(Instant::from_secs(3));
        assert_eq!(r.state(), RrcState::Idle);
        assert_eq!(r.grant(), None);
        assert_eq!(r.transitions(), before + 1);
        // New traffic pays the full promotion again.
        r.on_traffic(Instant::from_secs(4), 100);
        assert_eq!(r.grant(), None);
        let ev = r.poll(Instant::from_secs(4) + cfg().promotion_delay);
        assert_eq!(ev, vec![RrcEvent::PromotedToDch]);
    }

    #[test]
    fn preemption_steps_the_grant_down_one_level() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 50_000);
        r.poll(Instant::from_secs(2));
        for s in 2..60u64 {
            r.on_traffic(Instant::from_secs(s), 50_000);
            r.poll(Instant::from_secs(s));
        }
        assert_eq!(r.state(), RrcState::CellDch { upgraded: true });
        r.preempt(Instant::from_secs(60));
        assert_eq!(r.state(), RrcState::CellDch { upgraded: false });
        r.preempt(Instant::from_secs(61));
        assert_eq!(r.state(), RrcState::CellFach);
        // From FACH/Idle, preemption has nothing left to take.
        r.preempt(Instant::from_secs(62));
        assert_eq!(r.state(), RrcState::CellFach);
    }

    #[test]
    fn next_wakeup_tracks_pending_and_inactivity() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        assert_eq!(r.next_wakeup(), Some(Instant::from_millis(1_800)));
        r.poll(Instant::from_millis(1_800));
        // Now the DCH inactivity timer governs.
        assert_eq!(r.next_wakeup(), Some(Instant::ZERO + cfg().dch_inactivity));
    }

    #[test]
    fn demotion_fires_exactly_at_the_boundary_instant() {
        // The timer is ≥, not >: polling at exactly
        // `last_activity + dch_inactivity` must demote, and polling one
        // microsecond earlier must not.
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_millis(1_800));
        let boundary = Instant::ZERO + cfg().dch_inactivity;
        let just_before = Instant::from_micros(boundary.total_micros() - 1);
        assert!(r.poll(just_before).is_empty(), "demoted 1 µs early");
        assert!(matches!(r.state(), RrcState::CellDch { .. }));
        let ev = r.poll(boundary);
        assert_eq!(ev, vec![RrcEvent::DemotedToFach]);
        // Same edge one level down. FACH inactivity also runs from
        // `last_activity` (still t=0, the demotion itself is not
        // activity), so FACH → Idle fires at exactly t=30 s.
        let fach_boundary = Instant::ZERO + cfg().fach_inactivity;
        let just_before = Instant::from_micros(fach_boundary.total_micros() - 1);
        assert!(r.poll(just_before).is_empty());
        assert_eq!(r.poll(fach_boundary), vec![RrcEvent::DemotedToIdle]);
    }

    #[test]
    fn queued_backlog_activity_races_the_demotion_timer() {
        // A drain notification arriving at the very instant the
        // inactivity timer would fire keeps the channel up: on_traffic
        // refreshes last_activity before poll evaluates the timer, which
        // is the order UmtsAttachment produces (enqueue, then poll).
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_millis(1_800));
        let boundary = Instant::ZERO + cfg().dch_inactivity;
        r.on_traffic(boundary, 4_000); // queued uplink backlog drains now
        assert!(r.poll(boundary).is_empty(), "activity at the boundary must win");
        assert!(matches!(r.state(), RrcState::CellDch { .. }));
        // With the refreshed clock the demotion lands one full period later.
        let next = boundary + cfg().dch_inactivity;
        assert_eq!(r.poll(next), vec![RrcEvent::DemotedToFach]);
        // And in the opposite order — poll first, then traffic — the
        // demotion stands and the new traffic starts a FACH promotion.
        r.on_traffic(next + Duration::from_micros(1), 4_000);
        assert_eq!(r.state(), RrcState::CellFach);
        assert!(r.next_wakeup().unwrap() <= next + cfg().promotion_delay);
    }

    #[test]
    fn idle_promotion_latency_is_accounted() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        // First promotion: requested at 1 s, completes 1.8 s later.
        r.on_traffic(Instant::from_secs(1), 100);
        r.poll(Instant::from_secs(1) + cfg().promotion_delay);
        let d = r.dwell(Instant::from_secs(3));
        assert_eq!(d.idle_promotions, 1);
        assert_eq!(d.idle_promotion_latency, cfg().promotion_delay);
        // FACH → DCH promotions do not count toward the Idle metric.
        let _ = r.poll(Instant::from_secs(60)); // DCH → FACH
        r.on_traffic(Instant::from_secs(61), 100);
        let _ = r.poll(Instant::from_secs(63)); // FACH → DCH (quick)
        assert_eq!(r.dwell(Instant::from_secs(63)).idle_promotions, 1);
        // A second cold start adds a second sample.
        r.release(Instant::from_secs(70));
        r.on_traffic(Instant::from_secs(80), 100);
        r.poll(Instant::from_secs(80) + cfg().promotion_delay);
        let d = r.dwell(Instant::from_secs(85));
        assert_eq!(d.idle_promotions, 2);
        assert_eq!(d.idle_promotion_latency, cfg().promotion_delay * 2);
    }

    #[test]
    fn dwell_buckets_sum_to_elapsed_time() {
        let mut r = RrcController::new(cfg(), Instant::ZERO);
        r.on_traffic(Instant::ZERO, 100);
        r.poll(Instant::from_millis(1_800));
        let _ = r.poll(Instant::from_secs(30)); // DCH → FACH at 5 s
        let now = Instant::from_secs(40);
        let d = r.dwell(now);
        assert_eq!(d.idle, Duration::from_millis(1_800));
        assert_eq!(d.dch, Duration::from_millis(5_000 - 1_800));
        assert_eq!(d.fach, Duration::from_secs(35));
        assert_eq!(d.dch_upgraded, Duration::ZERO);
        assert_eq!(d.idle + d.fach + d.dch + d.dch_upgraded, Duration::from_secs(40));
    }

    #[test]
    fn dwell_is_poll_cadence_independent() {
        // Demotion dwell is charged at the logical boundary, so a lazy
        // poller and an eager poller agree on the buckets.
        let run = |poll_at: &[u64]| {
            let mut r = RrcController::new(cfg(), Instant::ZERO);
            r.on_traffic(Instant::ZERO, 100);
            for &ms in poll_at {
                let _ = r.poll(Instant::from_millis(ms));
            }
            r.dwell(Instant::from_secs(60))
        };
        let eager = run(&[1_800, 5_000, 6_800, 36_800, 59_000]);
        // Poll fires one demotion per call, so the lazy poller calls
        // twice at 59 s — both demotions are still charged at their
        // logical boundaries (5 s and 30 s), not at poll time.
        let lazy = run(&[1_800, 59_000, 59_000]);
        assert_eq!(eager, lazy);
    }
}
